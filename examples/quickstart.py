"""Quickstart: mine a phrase-represented, entity-enriched topic hierarchy.

Generates a small synthetic bibliographic corpus (the offline stand-in
for DBLP), runs the integrated framework end to end, and prints the
hierarchy with ranked phrases and entities — the output of Figure 3.4.

Run:  python examples/quickstart.py
"""

from repro.core import LatentEntityMiner, MinerConfig
from repro.datasets import DBLPConfig, generate_dblp


def main() -> None:
    print("Generating synthetic DBLP-style corpus ...")
    dataset = generate_dblp(DBLPConfig(max_authors=120), seed=3)
    corpus = dataset.corpus
    print(f"  {len(corpus)} paper titles, "
          f"{len(corpus.vocabulary)} distinct terms, "
          f"entity types: {corpus.entity_types()}")

    print("\nBuilding the topical hierarchy (CATHYHIN + phrase mining) ...")
    miner = LatentEntityMiner(
        MinerConfig(num_children=[6, 3], max_depth=2,
                    weight_mode="learn"), seed=0)
    result = miner.fit(corpus)

    print("\nTopical hierarchy (phrases / venues):\n")
    print(result.render(max_phrases=4, entity_types=["venue"],
                        max_entities=2))

    # Entity role analysis (Chapter 5): who leads the first area?
    topic = result.hierarchy.root.children[0]
    print(f"\nTop authors in topic {topic.notation} "
          f"(ERankPop+Pur):")
    for name, score in result.roles.rank_entities(topic.notation,
                                                  "author", top_k=5):
        print(f"  {name}  ({score:.4f})")

    # Advisor-advisee mining (Chapter 6) over the same corpus.
    print("\nMining advisor-advisee relations (TPFG) ...")
    relations, graph, _ = miner.mine_relations(corpus)
    shown = 0
    for author in graph.authors:
        advisor = relations.predicted_advisor(author)
        if advisor:
            print(f"  {author}  <-advised by-  {advisor} "
                  f"(score {relations.score(author, advisor):.2f})")
            shown += 1
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
