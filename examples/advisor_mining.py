"""Advisor-advisee mining with TPFG (Chapter 6).

Builds the temporal collaboration network, runs Stage-1 preprocessing
(Kulczynski / imbalance-ratio filtering, interval estimation) and Stage-2
TPFG inference, and compares accuracy against the RULE and IndMAX
baselines and the supervised CRF — the Section 6.1.6 / 6.2.4 experiment
in miniature.

Run:  python examples/advisor_mining.py
"""

import numpy as np

from repro.datasets import DBLPConfig, generate_dblp
from repro.relations import (CollaborationNetwork, HierarchicalRelationCRF,
                             IndMaxBaseline, RuleBaseline, TPFG,
                             build_candidate_graph, evaluate_predictions)


def main() -> None:
    dataset = generate_dblp(DBLPConfig(max_authors=300), seed=7)
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    print(network)

    truth = {r.advisee: r.advisor for r in dataset.ground_truth.advising}
    for author in network.authors:
        truth.setdefault(author, None)

    graph = build_candidate_graph(network)
    print(f"candidate graph: {graph.num_edges()} candidate relations, "
          f"acyclic={graph.is_acyclic()}")

    tpfg = TPFG(max_iter=20).fit(graph)
    methods = {
        "RULE": RuleBaseline().predict(network),
        "IndMAX": IndMaxBaseline().predict(graph).predictions(),
        "TPFG": tpfg.predictions(),
    }

    # Supervised CRF on half the labeled advisees.
    advisees = sorted(a for a, t in truth.items() if t is not None)
    rng = np.random.default_rng(0)
    rng.shuffle(advisees)
    half = len(advisees) // 2
    train = {a: truth[a] for a in advisees[:half]}
    held_out = {a: truth[a] for a in advisees[half:]}
    crf = HierarchicalRelationCRF(epochs=200, seed=0)
    crf.fit(network, graph, train)

    print("\naccuracy on authors with a true advisor:")
    for name, predictions in methods.items():
        accuracy = evaluate_predictions(predictions, truth)
        print(f"  {name:<8} {accuracy.advisee_accuracy:.3f} "
              f"(root accuracy {accuracy.root_accuracy:.3f})")
    crf_accuracy = evaluate_predictions(
        crf.predict(network, graph).predictions(), held_out)
    print(f"  {'CRF':<8} {crf_accuracy.advisee_accuracy:.3f} "
          f"(held-out advisees, 50% training labels)")

    # Show a few ranked advisor lists.
    print("\nsample advisor rankings (TPFG):")
    shown = 0
    for author in graph.authors:
        ranked = tpfg.ranking[author]
        if len(ranked) > 2 and truth.get(author):
            pretty = ", ".join(f"{name or '<none>'}:{score:.2f}"
                               for name, score in ranked[:3])
            marker = "*" if tpfg.predicted_advisor(author) == \
                truth[author] else " "
            print(f" {marker} {author} (true {truth[author]}): {pretty}")
            shown += 1
        if shown >= 6:
            break


if __name__ == "__main__":
    main()
