"""Topical phrase mining with ToPMine and KERT (Chapter 4).

Mines frequent phrases, segments documents into bags of phrases, fits a
phrase-constrained topic model, and prints each topic's ranked phrase
list — then contrasts KERT's criteria-driven ranking on the same corpus.

Run:  python examples/topical_phrases.py
"""

from repro.baselines import LDAGibbs
from repro.datasets import DBLPConfig, generate_dblp
from repro.phrases import (KERT, KERTConfig, ToPMine, ToPMineConfig,
                           mine_frequent_phrases, render_phrase)


def main() -> None:
    dataset = generate_dblp(DBLPConfig(max_authors=100), seed=3)
    corpus = dataset.corpus
    print(f"Corpus: {len(corpus)} documents, "
          f"{len(corpus.vocabulary)} terms\n")

    print("=== ToPMine (frequent phrase mining + segmentation + "
          "PhraseLDA) ===")
    topmine = ToPMine(ToPMineConfig(num_topics=6, lda_iterations=60,
                                    merge_threshold=8.0), seed=0)
    result = topmine.fit(corpus)
    multiword = [p for p in result.counts.counts if len(p) >= 2]
    print(f"mined {len(result.counts)} frequent phrases "
          f"({len(multiword)} multiword)")
    print("example segmentation:",
          [render_phrase(p, corpus.vocabulary)
           for p in result.partitions[0]])
    for t in range(6):
        print(f"  topic {t}: "
              + " / ".join(result.top_phrases(t, 5, corpus)))

    print("\n=== KERT (popularity / purity / concordance / "
          "completeness) ===")
    lda = LDAGibbs(num_topics=6, iterations=40, seed=0).fit(
        [doc.tokens for doc in corpus], len(corpus.vocabulary))
    counts = mine_frequent_phrases(corpus, min_support=5)
    ranked = KERT(KERTConfig(min_support=5)).rank_strings(
        corpus, lda.to_flat(), counts=counts, top_k=5)
    for t, topic in enumerate(ranked):
        print(f"  topic {t}: " + " / ".join(p for p, _ in topic))

    print("\nAblation: dropping the completeness filter re-admits "
          "fragments like 'vector machines':")
    no_com = KERT(KERTConfig(min_support=5, use_completeness=False))
    ranked = no_com.rank_strings(corpus, lda.to_flat(), counts=counts,
                                 top_k=8)
    fragments = [p for topic in ranked for p, _ in topic
                 if p in ("vector machines", "support vector")]
    print(f"  fragments present without the filter: {fragments or 'none'}")


if __name__ == "__main__":
    main()
