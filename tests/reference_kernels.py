"""Reference (pre-vectorization) solver kernels.

These are the straightforward per-link / per-token / per-candidate loop
implementations the solvers shipped with before their kernels were
vectorized, blocked, or moved onto sparse storage.  They define the
ground-truth semantics: the equivalence tests assert the fast kernels
match them to 1e-12 (or bit-identically, for integer count state), and
``benchmarks/bench_hotpaths.py`` times the fast kernels against them.

Three families live here:

* CATHY EM kernels (scatter, posterior split, expected weights) — from
  PR 2's vectorization;
* collapsed-Gibbs kernels: the semantic reference sweep/conditional
  (log-space, shared batched-uniform draw contract) plus the *legacy*
  sweep kept verbatim (``+ EPS`` inside the log, per-unit
  ``Generator.choice``) for honest before/after benchmarking;
* network bookkeeping (:class:`ReferenceDictNetwork`) and the
  rescanning ToPMine merge (:func:`reference_segment_chunk`) — the
  pre-CSR / pre-heap data paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

EPS = 1e-12


def reference_scatter(expected: np.ndarray, i_idx: np.ndarray,
                      j_idx: np.ndarray, num_nodes: int) -> np.ndarray:
    """M-step scatter (Eq. 3.7) via one ``np.add.at`` pair per subtopic."""
    k = expected.shape[0]
    phi = np.zeros((k, num_nodes))
    for z in range(k):
        np.add.at(phi[z], i_idx, expected[z])
        np.add.at(phi[z], j_idx, expected[z])
    return phi


def reference_posterior_link_split(rho: np.ndarray, phi: np.ndarray,
                                   i_idx: np.ndarray, j_idx: np.ndarray,
                                   weights: np.ndarray) -> np.ndarray:
    """Eq. 3.5 posterior split computed link by link.

    Degenerate links (mixture score zero) get a zero split, matching the
    vectorized kernel's "count, don't drop" semantics.
    """
    k = len(rho)
    expected = np.zeros((k, len(weights)))
    for e in range(len(weights)):
        scores = rho * phi[:, i_idx[e]] * phi[:, j_idx[e]]
        denom = scores.sum()
        if denom <= 0:
            continue
        expected[:, e] = weights[e] * scores / denom
    return expected


def reference_expected_link_weights(rho: np.ndarray, phi: np.ndarray,
                                    links: List[Tuple[int, int, float]],
                                    ) -> List[Dict[Tuple[int, int], float]]:
    """The original ``CathyEM.expected_link_weights`` loop, verbatim."""
    k = len(rho)
    result: List[Dict[Tuple[int, int], float]] = [{} for _ in range(k)]
    for i, j, weight in links:
        scores = rho * phi[:, i] * phi[:, j]
        denom = scores.sum()
        if denom <= 0:
            continue
        for z in range(k):
            expected = weight * scores[z] / denom
            if expected > 0:
                result[z][(i, j)] = expected
    return result


# --------------------------------------------------------------------- Gibbs
def reference_gibbs_conditional(n_dk_row: np.ndarray, n_kw: np.ndarray,
                                n_k: np.ndarray, unit: Sequence[int],
                                alpha: float, beta: float,
                                beta_sum: float) -> np.ndarray:
    """Normalized p(z | rest) for one sampling unit, log-space.

    The semantic ground truth of the collapsed conditional — the
    document factor once, one topic-word factor per token with the
    denominator offset by token position — that both the blocked fast
    sweep and the in-library reference sweep must reproduce to 1e-12.
    """
    log_p = np.log(n_dk_row + alpha)
    denom = n_k + beta_sum
    for offset, w in enumerate(unit):
        log_p = log_p + np.log(n_kw[:, w] + beta) - np.log(denom + offset)
    log_p -= log_p.max()
    p = np.exp(log_p)
    return p / p.sum()


def legacy_gibbs_sweep(units, assignments, n_dk, n_kw, n_k, alpha: float,
                       beta: float, beta_sum: float,
                       rng: np.random.Generator) -> None:
    """The pre-PR-7 Gibbs inner loop, verbatim (for benchmarking).

    Per-unit numpy log-space arithmetic with the historical ``+ EPS``
    smoothing inside the log and one ``Generator.choice`` call per unit.
    Numerically *close to* but not exactly the current conditional (EPS
    shifts it at the ~1e-10 level), and a different RNG consumption
    pattern — which is why this is the timing baseline, not the
    equivalence baseline.
    """
    k = len(n_k)
    for d, doc_units in enumerate(units):
        labels = assignments[d]
        for u, unit in enumerate(doc_units):
            z_old = labels[u]
            size = len(unit)
            n_dk[d, z_old] -= size
            n_k[z_old] -= size
            for w in unit:
                n_kw[z_old, w] -= 1

            log_p = np.log(n_dk[d] + alpha)
            denom = n_k + beta_sum
            for offset, w in enumerate(unit):
                log_p = log_p + np.log(
                    n_kw[:, w] + beta + EPS) - np.log(denom + offset)
            log_p -= log_p.max()
            p = np.exp(log_p)
            p /= p.sum()
            z_new = int(rng.choice(k, p=p))

            labels[u] = z_new
            n_dk[d, z_new] += size
            n_k[z_new] += size
            for w in unit:
                n_kw[z_new, w] += 1


def reference_log_likelihood(units, assignments, phi) -> float:
    """The original ``LDAGibbs._log_likelihood`` triple loop, verbatim."""
    ll = 0.0
    for doc_units, labels in zip(units, assignments):
        for unit, z in zip(doc_units, labels):
            for w in unit:
                ll += float(np.log(max(phi[z, w], EPS)))
    return ll


# ------------------------------------------------------------------- network
class ReferenceDictNetwork:
    """Verbatim pre-CSR link bookkeeping: one dict insert per edge.

    Reproduces the old ``HeterogeneousNetwork`` storage semantics —
    canonical link-type ordering, (i, j) key swap for same-type links,
    weight accumulation on duplicates — without any of the typed-node
    API, so property tests can compare the CSR backbone against it on
    random typed graphs.
    """

    def __init__(self) -> None:
        self.links: Dict[Tuple[str, str],
                         Dict[Tuple[int, int], float]] = {}

    def add_link(self, type_x: str, i: int, type_y: str, j: int,
                 weight: float = 1.0) -> None:
        if (type_y, type_x) < (type_x, type_y):
            type_x, type_y, i, j = type_y, type_x, j, i
        if type_x == type_y and i > j:
            i, j = j, i
        bucket = self.links.setdefault((type_x, type_y), {})
        key = (i, j)
        bucket[key] = bucket.get(key, 0.0) + weight

    def total_weight(self, link_type: Tuple[str, str]) -> float:
        return sum(self.links.get(link_type, {}).values())

    def degree(self, node_type: str, index: int) -> float:
        total = 0.0
        for (type_x, type_y), bucket in self.links.items():
            for (i, j), weight in bucket.items():
                counted = False
                if type_x == node_type and i == index:
                    total += weight
                    counted = True
                if type_y == node_type and j == index \
                        and not (counted and type_x == type_y and i == j):
                    total += weight
        return total

    def subnetwork_links(self, link_weights: Dict[Tuple[str, str],
                                                  Dict[Tuple[int, int],
                                                       float]],
                         min_weight: float) -> Dict[Tuple[str, str],
                                                    Dict[Tuple[int, int],
                                                         float]]:
        """The kept-link sets of an Eq. 3.23 split, per link type."""
        kept: Dict[Tuple[str, str], Dict[Tuple[int, int], float]] = {}
        for link_type, bucket in link_weights.items():
            rows = {key: w for key, w in bucket.items() if w >= min_weight}
            if rows:
                kept[link_type] = rows
        return kept


# ------------------------------------------------------------------- ToPMine
def reference_segment_chunk(chunk: Sequence[int], counts,
                            alpha: float = 2.0) -> List[Tuple[int, ...]]:
    """Algorithm 2 by full rescan: the pre-heap bottom-up merge.

    Every round scans *all* adjacent phrase pairs for the highest
    significance (ties to the earliest pair, matching the heap's
    ``(-sig, slot)`` ordering), merges the winner, and repeats until the
    best merge falls below ``alpha`` — O(n^2) per chunk versus the
    heap's O(n log n).
    """
    from repro.phrases.significance import NEVER, merge_significance

    phrases: List[Tuple[int, ...]] = [(tok,) for tok in chunk]
    while len(phrases) >= 2:
        best_sig = NEVER
        best_at = -1
        for at in range(len(phrases) - 1):
            sig = merge_significance(counts, phrases[at], phrases[at + 1])
            if sig > best_sig:
                best_sig = sig
                best_at = at
        if best_at < 0 or best_sig < alpha:
            break
        phrases[best_at:best_at + 2] = [phrases[best_at]
                                        + phrases[best_at + 1]]
    return phrases
