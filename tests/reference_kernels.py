"""Reference (pre-vectorization) solver kernels.

These are the straightforward per-link / per-subtopic loop
implementations that :mod:`repro.cathy.em` shipped with before the
kernels were vectorized.  They define the ground-truth semantics: the
equivalence tests assert the vectorized kernels match them to 1e-12,
and ``benchmarks/bench_hotpaths.py`` times the vectorized kernels
against them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


def reference_scatter(expected: np.ndarray, i_idx: np.ndarray,
                      j_idx: np.ndarray, num_nodes: int) -> np.ndarray:
    """M-step scatter (Eq. 3.7) via one ``np.add.at`` pair per subtopic."""
    k = expected.shape[0]
    phi = np.zeros((k, num_nodes))
    for z in range(k):
        np.add.at(phi[z], i_idx, expected[z])
        np.add.at(phi[z], j_idx, expected[z])
    return phi


def reference_posterior_link_split(rho: np.ndarray, phi: np.ndarray,
                                   i_idx: np.ndarray, j_idx: np.ndarray,
                                   weights: np.ndarray) -> np.ndarray:
    """Eq. 3.5 posterior split computed link by link.

    Degenerate links (mixture score zero) get a zero split, matching the
    vectorized kernel's "count, don't drop" semantics.
    """
    k = len(rho)
    expected = np.zeros((k, len(weights)))
    for e in range(len(weights)):
        scores = rho * phi[:, i_idx[e]] * phi[:, j_idx[e]]
        denom = scores.sum()
        if denom <= 0:
            continue
        expected[:, e] = weights[e] * scores / denom
    return expected


def reference_expected_link_weights(rho: np.ndarray, phi: np.ndarray,
                                    links: List[Tuple[int, int, float]],
                                    ) -> List[Dict[Tuple[int, int], float]]:
    """The original ``CathyEM.expected_link_weights`` loop, verbatim."""
    k = len(rho)
    result: List[Dict[Tuple[int, int], float]] = [{} for _ in range(k)]
    for i, j, weight in links:
        scores = rho * phi[:, i] * phi[:, j]
        denom = scores.sum()
        if denom <= 0:
            continue
        for z in range(k):
            expected = weight * scores[z] / denom
            if expected > 0:
                result[z][(i, j)] = expected
    return result
