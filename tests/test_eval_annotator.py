"""Tests for the simulated-annotator substrate."""

import numpy as np
import pytest

from repro.corpus import Corpus
from repro.eval import LabelAffinity, SimulatedAnnotator, jensen_shannon


@pytest.fixture
def labeled_corpus():
    texts = (["alpha beta"] * 6 + ["gamma delta"] * 6
             + ["alpha gamma"] * 2)
    labels = ["o/1/1"] * 6 + ["o/2/1"] * 6 + ["o/1/2"] * 2
    entities = ([{"person": ["ann"]}] * 6 + [{"person": ["zoe"]}] * 6
                + [{"person": ["ann"]}] * 2)
    return Corpus.from_texts(texts, labels=labels, entities=entities)


class TestLabelSpace:
    def test_prefix_labels_included(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        assert "o" in affinity.labels
        assert "o/1" in affinity.labels
        assert "o/1/1" in affinity.labels

    def test_leaf_and_area_indices(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        leaf_labels = {affinity.labels[i]
                       for i in affinity.leaf_label_indices}
        assert leaf_labels == {"o/1/1", "o/2/1", "o/1/2"}
        area_labels = {affinity.labels[i]
                       for i in affinity.area_label_indices}
        assert area_labels == {"o/1", "o/2"}

    def test_same_area_closer_than_cross_area(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        # "beta" is pure o/1/1; "gamma" spans o/2/1 and o/1/2;
        # "alpha" spans o/1/1 and o/1/2 (same area o/1).
        alpha = affinity.phrase_distribution("alpha")
        beta = affinity.phrase_distribution("beta")
        gamma = affinity.phrase_distribution("gamma")
        assert jensen_shannon(alpha, beta) < jensen_shannon(beta, gamma)


class TestAnnotator:
    def test_noiseless_intruder_pick_is_deterministic(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        annotator = SimulatedAnnotator(affinity, noise=0.0, seed=0)
        options = ["alpha", "beta", "gamma"]
        picks = {annotator.pick_phrase_intruder(options)
                 for _ in range(5)}
        assert picks == {2}  # gamma is the cross-area item

    def test_entity_intruder(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        annotator = SimulatedAnnotator(affinity, noise=0.0, seed=0)
        # ann's documents are area o/1, zoe's are o/2.
        pick = annotator.pick_intruder([
            affinity.entity_distribution("person", "ann"),
            affinity.entity_distribution("person", "ann"),
            affinity.entity_distribution("person", "zoe")])
        assert pick == 2

    def test_high_noise_randomizes(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        annotator = SimulatedAnnotator(affinity, noise=100.0, seed=0)
        picks = {annotator.pick_phrase_intruder(["alpha", "beta",
                                                 "gamma"])
                 for _ in range(30)}
        assert len(picks) > 1

    def test_entity_distribution_cached(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        a = affinity.entity_distribution("person", "ann")
        b = affinity.entity_distribution("person", "ann")
        assert a is b

    def test_unknown_entity_uniform(self, labeled_corpus):
        affinity = LabelAffinity(labeled_corpus)
        dist = affinity.entity_distribution("person", "nobody")
        assert np.allclose(dist, dist[0])
