"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets import DBLPConfig, generate_dblp, save_dataset


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dataset.json"
    dataset = generate_dblp(DBLPConfig(max_authors=60), seed=3)
    save_dataset(dataset, str(path))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "dblp", "out.json", "--seed", "7"])
        assert args.kind == "dblp"
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestGenerate:
    def test_writes_loadable_dataset(self, tmp_path, capsys):
        out = tmp_path / "ds.json"
        code = main(["generate", "dblp", str(out),
                     "--max-authors", "40", "--seed", "1"])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["version"] == 1
        assert "wrote synthetic-dblp" in capsys.readouterr().out

    def test_news_kind(self, tmp_path, capsys):
        out = tmp_path / "news.json"
        code = main(["generate", "news", str(out), "--stories", "3",
                     "--articles", "10", "--seed", "1"])
        assert code == 0
        assert "synthetic-news" in capsys.readouterr().out


class TestHierarchy:
    def test_renders_tree(self, dataset_path, capsys):
        code = main(["hierarchy", dataset_path, "--children", "3",
                     "--top", "3", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[o/1]" in out
        assert "venue:" in out

    def test_json_output(self, dataset_path, capsys):
        code = main(["hierarchy", dataset_path, "--children", "3",
                     "--json", "--seed", "0"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["notation"] == "o"
        assert len(data["children"]) == 3


class TestPhrases:
    def test_prints_topics(self, dataset_path, capsys):
        code = main(["phrases", dataset_path, "--topics", "4",
                     "--iterations", "10", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("topic ") == 4


class TestRelations:
    def test_prints_predictions_and_accuracy(self, dataset_path, capsys):
        code = main(["relations", dataset_path, "--limit", "5"])
        assert code == 0
        captured = capsys.readouterr()
        assert "advisee accuracy" in captured.err
        assert captured.out.strip()


class TestErrorHandling:
    def test_missing_dataset_exits_2_with_one_line_error(self, tmp_path,
                                                         capsys):
        code = main(["hierarchy", str(tmp_path / "nope.json")])
        assert code == 2
        captured = capsys.readouterr()
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("repro: error:")

    def test_corrupt_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["hierarchy", str(bad)])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "wrong.json"
        bad.write_text(json.dumps({"version": 1, "surprise": []}))
        code = main(["hierarchy", str(bad)])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_trace_and_report_written(self, dataset_path, tmp_path,
                                      capsys):
        import repro.obs as obs
        trace = tmp_path / "trace.jsonl"
        report = tmp_path / "report.json"
        code = main(["hierarchy", dataset_path, "--children", "3",
                     "--seed", "0", "--trace", str(trace),
                     "--report", str(report)])
        assert code == 0
        data = json.loads(report.read_text())
        obs.validate_report(data)
        assert "cathy.hin_em.fit" in data["phases"]
        assert data["config"]["children"] == "3"
        events = [json.loads(line)
                  for line in trace.read_text().splitlines()]
        assert any(e["event"] == "iteration" for e in events)
        assert any(e["event"] == "end" and e["trace"] == "cathy.hin_em"
                   for e in events)

    def test_log_level_flag_accepted(self, dataset_path, capsys):
        code = main(["generate", "dblp", "/dev/null", "--max-authors",
                     "30", "--seed", "1", "--log-level", "INFO"])
        assert code == 0


class TestStrod:
    def test_prints_topic_words(self, dataset_path, capsys):
        code = main(["strod", dataset_path, "--topics", "4",
                     "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("alpha=") == 4

    def test_sparse_flag(self, dataset_path, capsys):
        code = main(["strod", dataset_path, "--topics", "3", "--sparse"])
        assert code == 0
        assert capsys.readouterr().out.count("alpha=") == 3


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        from repro import get_version
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {get_version()}"


class TestExportModel:
    def test_writes_loadable_artifact(self, dataset_path, tmp_path, capsys):
        from repro.serve import MODEL_SCHEMA, ModelQueryEngine, load_model
        out = tmp_path / "model.json"
        code = main(["export-model", dataset_path, "-o", str(out),
                     "--children", "3", "--seed", "0"])
        assert code == 0
        assert "exported" in capsys.readouterr().out
        model = load_model(str(out))
        assert model.manifest["schema"] == MODEL_SCHEMA
        engine = ModelQueryEngine(model)
        assert engine.top_phrases("o", 3)["phrases"]

    def test_output_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export-model", "ds.json"])


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "model.json"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.cache_size == 1024
        assert args.request_timeout == 30.0

    def test_serve_missing_model_exits_2(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
