"""Tests for :mod:`repro.contracts` — the versioned-format registry."""

import re
import subprocess
import sys

import pytest

from repro import contracts
from repro.contracts import (REGISTRY, SchemaSpec, check_registry,
                             constant_name_of, get_spec,
                             registered_formats)
from repro.errors import ConfigurationError


class TestRegistryContents:
    def test_every_known_format_is_registered(self):
        expected = {
            "repro.serve/model/v1",
            "repro.serve/model/v2",
            "repro.resilience/checkpoint/v1",
            "repro.obs/run-report/v1",
            "repro.obs/run-report/v2",
            "repro.obs/profile/v1",
            "repro.stream/shard/v1",
            "repro.stream/shard-dir/v1",
            "repro.stream/vocab-delta/v1",
            "repro.strod/moment-sketch/v1",
            "repro.lint/report/v1",
            "repro.lint/cache/v1",
        }
        assert set(registered_formats()) == expected

    def test_formats_match_the_declared_pattern(self):
        pattern = re.compile(f"^{contracts.FORMAT_PATTERN}$")
        for fmt in registered_formats():
            assert pattern.match(fmt), fmt

    def test_every_format_has_a_public_constant(self):
        for fmt in registered_formats():
            name = constant_name_of(fmt)
            assert name is not None, fmt
            assert getattr(contracts, name) == fmt
            assert name in contracts.__all__

    def test_get_spec_returns_full_spec(self):
        spec = get_spec("repro.serve/model/v1")
        assert isinstance(spec, SchemaSpec)
        assert spec.owner == "repro.serve.artifact"
        assert spec.loader_parts() == ("repro.serve.artifact",
                                       "load_model")

    def test_get_spec_raises_for_unregistered(self):
        with pytest.raises(ConfigurationError):
            get_spec("repro.serve/model/v99")

    def test_constant_name_of_unregistered_is_none(self):
        assert constant_name_of("repro.nowhere/x/v1") is None


class TestRegistryValidation:
    def test_check_registry_is_clean(self):
        assert check_registry() == []

    def test_register_rejects_malformed_format(self):
        with pytest.raises(ConfigurationError):
            contracts._register("not-a-format", owner="x",
                                loader="m:f", title="bad")

    def test_register_rejects_duplicates(self):
        fmt = "repro.serve/model/v1"
        with pytest.raises(ConfigurationError):
            contracts._register(fmt, owner="x", loader="m:f",
                                title="dup")

    def test_register_rejects_loader_without_symbol(self):
        with pytest.raises(ConfigurationError):
            contracts._register("repro.test/thing/v1", owner="x",
                                loader="just.a.module", title="bad")

    def test_writers_import_their_constants(self):
        # The migration contract: the owning modules re-export the
        # registered strings, so every historical public name still
        # resolves and equals the registry's value.
        from repro.lint.report import REPORT_SCHEMA as LINT_REPORT
        from repro.obs.profile import PROFILE_SCHEMA
        from repro.obs.report import REPORT_SCHEMA, REPORT_SCHEMA_V1
        from repro.resilience.checkpoint import CHECKPOINT_SCHEMA
        from repro.serve.artifact import MODEL_SCHEMA
        from repro.serve.artifact_v2 import MODEL_SCHEMA_V2
        from repro.stream.shards import (SHARD_DIR_SCHEMA, SHARD_SCHEMA,
                                         VOCAB_DELTA_SCHEMA)
        from repro.strod.moments import MOMENT_SKETCH_SCHEMA

        assert MODEL_SCHEMA == contracts.MODEL_V1
        assert MODEL_SCHEMA_V2 == contracts.MODEL_V2
        assert CHECKPOINT_SCHEMA == contracts.CHECKPOINT_V1
        assert REPORT_SCHEMA == contracts.RUN_REPORT_V2
        assert REPORT_SCHEMA_V1 == contracts.RUN_REPORT_V1
        assert PROFILE_SCHEMA == contracts.PROFILE_V1
        assert SHARD_SCHEMA == contracts.SHARD_V1
        assert SHARD_DIR_SCHEMA == contracts.SHARD_DIR_V1
        assert VOCAB_DELTA_SCHEMA == contracts.VOCAB_DELTA_V1
        assert MOMENT_SKETCH_SCHEMA == contracts.MOMENT_SKETCH_V1
        assert LINT_REPORT == contracts.LINT_REPORT_V1


class TestGuardEntryPoint:
    def test_main_exits_zero_when_clean(self, capsys):
        assert contracts.main([]) == 0
        out = capsys.readouterr().out
        assert "all loaders resolve" in out

    def test_module_runs_as_script(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.contracts"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "registered formats" in proc.stdout
