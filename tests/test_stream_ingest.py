"""IngestPipeline: drift arithmetic, refit policies, crash-resume.

The acceptance bar for the streaming subsystem (ISSUE 9): a corpus
ingested in k batches must yield a served model equal to the one-shot
batch fit (bit-for-bit at ``dirty_threshold=0.0``), and a killed-and-
resumed ingest must land in exactly the state an uninterrupted run
reaches.  Both are pinned here, along with the pure arithmetic of the
drift detectors and the three refit policies.
"""

import numpy as np
import pytest

from repro.corpus import Corpus
from repro.errors import ConfigurationError, DataError
from repro.serve import ModelQueryEngine, load_model
from repro.stream import (DriftConfig, IngestConfig, IngestPipeline,
                          ShardStore, StreamRefitter, baseline_from_sketch,
                          batch_key, detect_drift)
from repro.strod import MomentSketch
from repro.strod.hierarchy import STRODHierarchyBuilder, STRODTreeConfig

TOPIC_A = ["spectral", "tensor", "moment", "whitening",
           "decomposition", "power", "iteration", "eigenvalue"]
TOPIC_B = ["entity", "hierarchy", "mining", "network",
           "latent", "structure", "role", "linkage"]


def _make_batches(num_batches=3, docs_per_batch=8, seed=7):
    rng = np.random.default_rng(seed)
    batches = []
    for b in range(num_batches):
        batch = []
        for d in range(docs_per_batch):
            pool = TOPIC_A if d % 2 == 0 else TOPIC_B
            words = [pool[i] for i in rng.integers(0, len(pool), size=6)]
            batch.append({"text": " ".join(words) + ".",
                          "entities": {"author": [f"a{b}-{d % 3}"]},
                          "year": 2013 + b})
        batches.append(batch)
    return batches


BATCHES = _make_batches()

TREE = STRODTreeConfig(num_children=2, max_depth=1, min_documents=5,
                       num_restarts=2, num_iterations=5)


def _config(**overrides):
    kwargs = dict(refit_policy="always", tree=TREE, seed=3,
                  dirty_threshold=0.0)
    kwargs.update(overrides)
    return IngestConfig(**kwargs)


def _flatten(hierarchy):
    return {t.notation: (t.rho, t.phi) for t in hierarchy.topics()}


def _deep_equal(a, b):
    """`==` with bit-exact ndarray support (sketch states hold arrays)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_deep_equal(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_deep_equal(x, y) for x, y in zip(a, b)))
    return a == b


class TestDriftArithmetic:
    def test_missing_baseline_always_triggers(self):
        sketch = MomentSketch.from_docs([[0, 1, 2]], 4)
        report = detect_drift(None, sketch, DriftConfig())
        assert report.triggered
        assert report.reasons == ["no baseline model"]
        assert report.metrics["moment_delta"] == float("inf")

    def test_moment_delta_is_relative_l1(self):
        base = MomentSketch.from_docs([[0, 0, 0]], 4)
        baseline = baseline_from_sketch(base)
        grown = base.merge(MomentSketch.from_docs([[1, 1, 1]], 4))
        # m1 goes [1,0,0,0] -> [.5,.5,0,0]: |delta|_1 / |base|_1 = 1.0
        report = detect_drift(baseline, grown,
                              DriftConfig(moment_delta=1.0,
                                          vocab_growth=float("inf")))
        assert report.metrics["moment_delta"] == pytest.approx(1.0)
        assert report.triggered  # fires on >=
        calm = detect_drift(baseline, grown,
                            DriftConfig(moment_delta=1.01,
                                        vocab_growth=float("inf")))
        assert not calm.triggered

    def test_vocab_growth_pads_old_moment(self):
        base = MomentSketch.from_docs([[0, 1, 2]], 4)
        baseline = baseline_from_sketch(base)
        grown = base.merge(MomentSketch.from_docs([[4, 5, 5]], 6))
        report = detect_drift(baseline, grown,
                              DriftConfig(moment_delta=float("inf"),
                                          vocab_growth=0.5))
        assert report.metrics["vocab_growth"] == pytest.approx(0.5)
        assert report.triggered
        assert "vocab growth" in report.reasons[0]

    def test_doc_count_detector_disabled_at_zero(self):
        base = MomentSketch.from_docs([[0, 1, 2]], 4)
        baseline = baseline_from_sketch(base)
        grown = base.merge(MomentSketch.from_docs(
            [[0, 1, 2]] * 10, 4))
        quiet = DriftConfig(moment_delta=float("inf"),
                            vocab_growth=float("inf"), doc_count=0)
        assert not detect_drift(baseline, grown, quiet).triggered
        armed = DriftConfig(moment_delta=float("inf"),
                            vocab_growth=float("inf"), doc_count=10)
        report = detect_drift(baseline, grown, armed)
        assert report.triggered
        assert report.metrics["new_docs"] == 10.0

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftConfig(moment_delta=-0.1)
        with pytest.raises(ConfigurationError):
            DriftConfig(vocab_growth=-0.1)


class TestRefitPolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="refit policy"):
            IngestConfig(refit_policy="sometimes")

    def test_never_policy_sketches_without_solving(self, tmp_path):
        pipeline = IngestPipeline(ShardStore(str(tmp_path / "log")),
                                  _config(refit_policy="never"))
        report = pipeline.ingest_batch(BATCHES[0])
        assert not report.refit_ran
        assert pipeline.model_version == 0
        assert pipeline.sketch.num_docs == len(BATCHES[0])

    def test_always_policy_bumps_every_batch(self, tmp_path):
        pipeline = IngestPipeline(ShardStore(str(tmp_path / "log")),
                                  _config(refit_policy="always"))
        for expected, batch in enumerate(BATCHES, start=1):
            report = pipeline.ingest_batch(batch)
            assert report.refit_ran
            assert report.model_version == expected

    def test_drift_policy_first_batch_then_quiet(self, tmp_path):
        config = _config(
            refit_policy="drift",
            drift=DriftConfig(moment_delta=float("inf"),
                              vocab_growth=float("inf"), doc_count=0))
        pipeline = IngestPipeline(ShardStore(str(tmp_path / "log")),
                                  config)
        first = pipeline.ingest_batch(BATCHES[0])
        assert first.refit_ran  # no baseline: must solve once
        second = pipeline.ingest_batch(BATCHES[1])
        assert not second.refit_ran
        assert pipeline.model_version == 1

    def test_duplicate_batch_is_a_no_op(self, tmp_path):
        pipeline = IngestPipeline(ShardStore(str(tmp_path / "log")),
                                  _config())
        pipeline.ingest_batch(BATCHES[0])
        report = pipeline.ingest_batch(BATCHES[0])
        assert report.deduplicated
        assert not report.refit_ran
        assert pipeline.model_version == 1
        assert pipeline.store.num_shards == 1


class TestCrashResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        config = _config(refit_policy="drift", dirty_threshold=0.25)
        a = IngestPipeline(ShardStore(str(tmp_path / "a")), config,
                           checkpoint_dir=str(tmp_path / "a-ckpt"))
        for batch in BATCHES:
            a.ingest_batch(batch)

        # Interrupted run: batch 1 lands in the store but the process
        # dies before the pipeline sketches it or checkpoints.
        b_dir, b_ckpt = str(tmp_path / "b"), str(tmp_path / "b-ckpt")
        interrupted = IngestPipeline(ShardStore(b_dir), config,
                                     checkpoint_dir=b_ckpt)
        interrupted.ingest_batch(BATCHES[0])
        ShardStore(b_dir).append_batch(BATCHES[1],
                                       batch_key=batch_key(BATCHES[1]))
        resumed = IngestPipeline(ShardStore(b_dir), config,
                                 checkpoint_dir=b_ckpt)
        assert resumed.synced_shards == 2  # replayed the orphan shard
        resumed.ingest_batch(BATCHES[2])

        assert resumed.model_version == a.model_version
        assert resumed.sketch.fingerprint() == a.sketch.fingerprint()
        assert _deep_equal(resumed._state(), a._state())

    def test_retrying_the_crashed_batch_also_converges(self, tmp_path):
        """The CLI path: the killed `repro ingest` is simply re-run."""
        config = _config()
        a = IngestPipeline(ShardStore(str(tmp_path / "a")), config,
                           checkpoint_dir=str(tmp_path / "a-ckpt"))
        for batch in BATCHES[:2]:
            a.ingest_batch(batch)

        b_dir, b_ckpt = str(tmp_path / "b"), str(tmp_path / "b-ckpt")
        IngestPipeline(ShardStore(b_dir), config,
                       checkpoint_dir=b_ckpt).ingest_batch(BATCHES[0])
        ShardStore(b_dir).append_batch(BATCHES[1],
                                       batch_key=batch_key(BATCHES[1]))
        retried = IngestPipeline(ShardStore(b_dir), config,
                                 checkpoint_dir=b_ckpt)
        report = retried.ingest_batch(BATCHES[1])  # dedup + already synced
        assert report.deduplicated
        assert _deep_equal(retried._state(), a._state())

    def test_checkpoint_ahead_of_store_rejected(self, tmp_path):
        config = _config()
        ckpt = str(tmp_path / "ckpt")
        pipeline = IngestPipeline(ShardStore(str(tmp_path / "a")),
                                  config, checkpoint_dir=ckpt)
        pipeline.ingest_batch(BATCHES[0])
        with pytest.raises(DataError, match="ahead of the shard store"):
            IngestPipeline(ShardStore(str(tmp_path / "other")), config,
                           checkpoint_dir=ckpt)


class TestStreamEqualsBatch:
    def test_full_solve_refit_matches_batch_builder(self):
        corpus = Corpus.from_texts(
            [doc["text"] for batch in BATCHES for doc in batch])
        refitter = StreamRefitter(TREE, seed=3, dirty_threshold=0.0)
        streamed, _, _, stats = refitter.refit(corpus, None)
        batch = STRODHierarchyBuilder(TREE, seed=3).build(corpus)
        assert _flatten(streamed) == _flatten(batch)
        assert stats.nodes_solved >= 1
        assert stats.nodes_reused == 0

    def test_k_batch_ingest_equals_one_shot_fit(self, tmp_path):
        """ISSUE 9 end-to-end invariant: k-shard ingest == one-shot fit
        (exactly, at dirty_threshold=0.0), down to the served artifact."""
        streamed_model = str(tmp_path / "streamed.rmv2")
        streamed = IngestPipeline(
            ShardStore(str(tmp_path / "streamed")),
            _config(export_path=streamed_model))
        for batch in BATCHES:
            streamed.ingest_batch(batch)

        oneshot_model = str(tmp_path / "oneshot.rmv2")
        oneshot = IngestPipeline(
            ShardStore(str(tmp_path / "oneshot")),
            _config(export_path=oneshot_model))
        oneshot.ingest_batch([doc for batch in BATCHES for doc in batch])

        assert streamed._state()["tree_state"] \
            == oneshot._state()["tree_state"]

        left = ModelQueryEngine(load_model(streamed_model))
        right = ModelQueryEngine(load_model(oneshot_model))
        info_l, info_r = left.model_info(), right.model_info()
        assert info_l["stats"] == info_r["stats"]
        assert info_l["config_fingerprint"] == info_r["config_fingerprint"]
        assert "stream" in left.model.manifest  # sketch fingerprint tag
        assert info_l["model_version"] == 3
        assert info_r["model_version"] == 1

    def test_incremental_refit_reuses_clean_nodes(self, tmp_path):
        pipeline = IngestPipeline(
            ShardStore(str(tmp_path / "log")),
            _config(dirty_threshold=5.0))  # nothing ever re-dirties
        first = pipeline.ingest_batch(BATCHES[0])
        assert first.refit_stats["nodes_solved"] >= 1
        second = pipeline.ingest_batch(BATCHES[1])
        assert second.refit_stats["nodes_solved"] == 0
        assert second.refit_stats["nodes_reused"] >= 1
