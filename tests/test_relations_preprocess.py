"""Tests for Stage-1 preprocessing (Section 6.1.3)."""

import pytest

from repro.errors import ConfigurationError
from repro.relations import (CandidateGraph, CollaborationNetwork,
                             PreprocessConfig, build_candidate_graph,
                             imbalance_ratio, kulczynski)


def advising_network():
    """Advisor 'prof' publishes from 1990; student 'stu' 1998-2002 with
    joint papers; 'peer' is a same-age coauthor of stu."""
    papers = []
    for year in range(1990, 2005):
        papers.append((["prof"], year))
    for year in range(1998, 2003):
        papers.append((["stu", "prof"], year))
        papers.append((["stu", "prof"], year))
    papers.append((["stu"], 2003))
    for year in range(1998, 2001):
        papers.append((["peer", "stu"], year))
        papers.append((["peer"], year))
    return CollaborationNetwork.from_papers(papers)


class TestMeasures:
    def test_kulczynski_range(self):
        network = advising_network()
        pair = network.pair("stu", "prof")
        value = kulczynski(pair, network.series_of("stu"),
                           network.series_of("prof"), 2002)
        assert 0 < value <= 1

    def test_imbalance_positive_for_advisor(self):
        network = advising_network()
        pair = network.pair("stu", "prof")
        value = imbalance_ratio(pair, network.series_of("stu"),
                                network.series_of("prof"), 2002)
        assert value > 0

    def test_zero_when_no_collaboration_yet(self):
        network = advising_network()
        pair = network.pair("stu", "prof")
        assert kulczynski(pair, network.series_of("stu"),
                          network.series_of("prof"), 1991) == 0.0


class TestCandidateGraph:
    def test_advisor_is_candidate(self):
        graph = build_candidate_graph(advising_network())
        advisors = {c.advisor for c in graph.advisors_of("stu")}
        assert "prof" in advisors

    def test_same_age_peer_excluded(self):
        graph = build_candidate_graph(advising_network())
        advisors = {c.advisor for c in graph.advisors_of("stu")}
        assert "peer" not in advisors  # Assumption 6.2 (started same year)

    def test_root_option_always_present(self):
        graph = build_candidate_graph(advising_network())
        for author in graph.authors:
            advisors = [c.advisor for c in graph.advisors_of(author)]
            assert CandidateGraph.ROOT in advisors

    def test_likelihoods_normalized(self):
        graph = build_candidate_graph(advising_network())
        for author in graph.authors:
            total = sum(c.likelihood for c in graph.advisors_of(author))
            assert total == pytest.approx(1.0)

    def test_advising_interval_estimated(self):
        graph = build_candidate_graph(advising_network())
        candidate = next(c for c in graph.advisors_of("stu")
                         if c.advisor == "prof")
        assert candidate.start == 1998
        assert 1998 <= candidate.end <= 2003

    def test_graph_is_acyclic(self, dblp_small):
        network = CollaborationNetwork.from_corpus(dblp_small.corpus)
        graph = build_candidate_graph(network)
        assert graph.is_acyclic()

    def test_rules_prune_monotonically(self, dblp_small):
        network = CollaborationNetwork.from_corpus(dblp_small.corpus)
        all_rules = build_candidate_graph(
            network, PreprocessConfig(rules=frozenset(
                {"R1", "R2", "R3", "R4"})))
        no_rules = build_candidate_graph(
            network, PreprocessConfig(rules=frozenset()))
        assert all_rules.num_edges() <= no_rules.num_edges()

    def test_true_advisor_survives_rules(self, dblp_small):
        """Rules keep the true advisor as a candidate for most advisees."""
        network = CollaborationNetwork.from_corpus(dblp_small.corpus)
        graph = build_candidate_graph(network)
        truth = {r.advisee: r.advisor
                 for r in dblp_small.ground_truth.advising}
        kept = sum(
            1 for advisee, advisor in truth.items()
            if advisor in {c.advisor for c in graph.advisors_of(advisee)})
        # Rules trade recall for precision; the no-rules graph must keep
        # strictly more true advisors than the filtered graph loses.
        no_rules = build_candidate_graph(
            network, PreprocessConfig(rules=frozenset()))
        kept_no_rules = sum(
            1 for advisee, advisor in truth.items()
            if advisor in {c.advisor
                           for c in no_rules.advisors_of(advisee)})
        assert kept / len(truth) > 0.6
        assert kept_no_rules >= kept

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PreprocessConfig(rules=frozenset({"R9"}))
        with pytest.raises(ConfigurationError):
            PreprocessConfig(end_year_method="YEAR3")
        with pytest.raises(ConfigurationError):
            PreprocessConfig(likelihood="geometric")

    def test_end_year_methods_differ_sensibly(self):
        network = advising_network()
        for method in ("YEAR", "YEAR1", "YEAR2"):
            graph = build_candidate_graph(
                network, PreprocessConfig(end_year_method=method))
            candidate = next(c for c in graph.advisors_of("stu")
                             if c.advisor == "prof")
            assert candidate.start <= candidate.end
