"""Tests for the repro.obs telemetry subsystem."""

import io
import json
import logging
import time

import pytest

import repro.obs as obs
from repro.errors import DataError
from repro.obs.registry import _NULL_TIMER
from repro.obs.tracer import _NULL_TRACER


class TestRegistryCounters:
    def test_inc_accumulates(self):
        obs.set_enabled(True)
        obs.inc("links")
        obs.inc("links", 4)
        assert obs.get_registry().counter("links") == 5.0

    def test_unknown_counter_reads_zero(self):
        assert obs.get_registry().counter("never-touched") == 0.0

    def test_gauge_keeps_latest(self):
        obs.set_enabled(True)
        obs.set_gauge("residual", 0.5)
        obs.set_gauge("residual", 0.25)
        assert obs.get_registry().gauge("residual") == 0.25

    def test_reset_clears_everything(self):
        obs.set_enabled(True)
        obs.inc("x")
        obs.set_gauge("g", 1.0)
        obs.observe("t", 0.1)
        obs.reset_metrics()
        snapshot = obs.get_registry().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "timers": {}}


class TestTimers:
    def test_timed_context_manager_records(self):
        obs.set_enabled(True)
        with obs.timed("phase.sleep"):
            time.sleep(0.005)
        stats = obs.get_registry().timer("phase.sleep")
        assert stats.count == 1
        assert stats.total >= 0.004
        assert stats.min <= stats.max

    def test_timer_aggregates_multiple_observations(self):
        obs.set_enabled(True)
        for _ in range(3):
            with obs.timed("phase.multi"):
                pass
        stats = obs.get_registry().timer("phase.multi")
        assert stats.count == 3
        assert stats.mean == pytest.approx(stats.total / 3)

    def test_timed_function_decorator(self):
        obs.set_enabled(True)

        @obs.timed_function("phase.decorated")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert obs.get_registry().timer("phase.decorated").count == 1

    def test_decorated_function_respects_runtime_flag(self):
        @obs.timed_function("phase.late")
        def work():
            return 1

        work()  # disabled: nothing recorded
        assert obs.get_registry().timer("phase.late") is None
        obs.set_enabled(True)
        work()
        assert obs.get_registry().timer("phase.late").count == 1

    def test_timer_stats_to_dict_schema(self):
        obs.set_enabled(True)
        with obs.timed("phase.dict"):
            pass
        stats = obs.get_registry().timer("phase.dict").to_dict()
        assert set(stats) == {"count", "total_s", "mean_s", "min_s",
                              "max_s", "last_s", "p50_s", "p90_s",
                              "p99_s", "sketch"}

    def test_timer_quantiles_bracket_observations(self):
        obs.set_enabled(True)
        for ms in range(1, 101):
            obs.observe("phase.q", ms / 1000.0)
        stats = obs.get_registry().timer("phase.q")
        # The sketch has ~9% relative error; check loose brackets.
        assert 0.04 <= stats.quantile(0.5) <= 0.06
        assert 0.08 <= stats.quantile(0.9) <= 0.11
        assert stats.quantile(0.99) <= stats.max * 1.1


class TestDisabledFastPath:
    """Disabled observability must cost nothing: shared no-op singletons,
    no metric mutation, no trace accumulation."""

    def test_timed_returns_shared_singleton(self):
        assert obs.timed("a") is obs.timed("b") is _NULL_TIMER

    def test_trace_returns_shared_singleton(self):
        assert obs.trace("a") is obs.trace("b") is _NULL_TRACER

    def test_null_tracer_is_inert(self):
        tracer = obs.trace("solver")
        assert tracer.active is False
        tracer.record(log_likelihood=1.0)
        assert tracer.finish("converged") is None
        assert obs.get_traces() == []

    def test_counters_and_gauges_are_noops(self):
        obs.inc("x", 10)
        obs.set_gauge("g", 1.0)
        obs.observe("t", 1.0)
        snapshot = obs.get_registry().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "timers": {}}

    def test_null_timer_context_manager_runs_block(self):
        ran = []
        with obs.timed("anything"):
            ran.append(True)
        assert ran == [True]


class TestTracer:
    def test_records_carry_iteration_and_time(self):
        obs.set_enabled(True)
        tracer = obs.trace("solver", num_topics=3)
        tracer.record(log_likelihood=-10.0)
        tracer.record(log_likelihood=-5.0)
        result = tracer.finish("converged")
        assert result.name == "solver"
        assert result.context == {"num_topics": 3}
        assert result.termination == "converged"
        assert result.num_iterations == 2
        for index, rec in enumerate(result.iterations):
            assert rec["iteration"] == index
            assert rec["time_s"] >= 0.0
        assert result.series("log_likelihood") == [-10.0, -5.0]

    def test_finished_traces_are_collected_and_filterable(self):
        obs.set_enabled(True)
        obs.trace("a").finish()
        obs.trace("b").finish()
        obs.trace("a").finish()
        assert len(obs.get_traces()) == 3
        assert len(obs.get_traces("a")) == 2
        obs.clear_traces()
        assert obs.get_traces() == []

    def test_finish_is_idempotent(self):
        obs.set_enabled(True)
        tracer = obs.trace("solver")
        assert tracer.finish("converged") is not None
        assert tracer.finish("max_iter") is None
        assert len(obs.get_traces("solver")) == 1

    def test_jsonl_streaming(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.configure(trace_path=path)
        tracer = obs.trace("solver", k=2)
        tracer.record(residual=1.0)
        tracer.record(residual=0.5)
        tracer.finish("converged")
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert [line["event"] for line in lines] == ["iteration",
                                                     "iteration", "end"]
        assert lines[0]["residual"] == 1.0
        assert lines[-1]["termination"] == "converged"
        assert lines[-1]["context"] == {"k": 2}

    def test_to_dict_schema(self):
        obs.set_enabled(True)
        tracer = obs.trace("solver")
        tracer.record(log_likelihood=0.0)
        data = tracer.finish("max_iter").to_dict()
        assert set(data) == {"name", "context", "termination",
                             "num_iterations", "total_time_s", "iterations"}


class TestLogging:
    def test_get_logger_namespacing(self):
        assert obs.get_logger("cathy").name == "repro.cathy"
        assert obs.get_logger().name == "repro"

    def test_configure_logging_emits_at_level(self):
        stream = io.StringIO()
        obs.configure_logging("INFO", stream=stream)
        obs.get_logger("test").info("hello %s", "world")
        obs.get_logger("test").debug("invisible")
        output = stream.getvalue()
        assert "hello world" in output
        assert "invisible" not in output

    def test_json_lines_formatter(self):
        stream = io.StringIO()
        obs.configure_logging("INFO", json_lines=True, stream=stream)
        obs.get_logger("test").info("structured",
                                    extra={"fields": {"k": 3}})
        record = json.loads(stream.getvalue())
        assert record["message"] == "structured"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        assert record["k"] == 3

    def test_reconfiguring_does_not_stack_handlers(self):
        stream = io.StringIO()
        obs.configure_logging("INFO", stream=stream)
        obs.configure_logging("INFO", stream=stream)
        obs.get_logger("test").info("once")
        assert stream.getvalue().count("once") == 1

    def test_library_silent_without_configuration(self):
        assert not logging.getLogger("repro").handlers


class TestRunReport:
    def test_build_contains_all_sections(self):
        obs.set_enabled(True)
        with obs.timed("phase.one"):
            pass
        obs.inc("counter.one")
        tracer = obs.trace("solver")
        tracer.record(log_likelihood=1.0)
        tracer.finish("converged")
        report = obs.build_run_report(config={"k": 2})
        assert report["schema"] == obs.REPORT_SCHEMA
        assert report["config"] == {"k": 2}
        assert report["phases"]["phase.one"]["count"] == 1
        assert report["metrics"]["counters"]["counter.one"] == 1.0
        assert [t["name"] for t in report["traces"]] == ["solver"]

    def test_config_sanitized_to_jsonable(self):
        obs.set_enabled(True)
        report = obs.build_run_report(config={
            "tuple": (1, 2), "object": object(), "nested": {"s": {3}}})
        json.dumps(report)  # must not raise
        assert report["config"]["tuple"] == [1, 2]
        assert isinstance(report["config"]["object"], str)

    def test_roundtrip_validates(self, tmp_path):
        obs.set_enabled(True)
        with obs.timed("phase"):
            pass
        path = str(tmp_path / "report.json")
        obs.write_report(obs.build_run_report(), path)
        data = json.load(open(path))
        obs.validate_report(data)  # must not raise

    @pytest.mark.parametrize("mutation", [
        lambda r: r.update(schema="bogus"),
        lambda r: r.pop("metrics"),
        lambda r: r.update(traces={}),
        lambda r: r.update(phases={"p": {"count": 1}}),
        lambda r: r["traces"].append({"name": "x"}),
        lambda r: r.update(traces=[{"name": "x", "termination": "y",
                                    "iterations": [{"iteration": 0}]}]),
    ])
    def test_validate_rejects_malformed(self, mutation):
        obs.set_enabled(True)
        report = obs.build_run_report()
        mutation(report)
        with pytest.raises(DataError):
            obs.validate_report(report)

    def test_validate_rejects_non_object(self):
        with pytest.raises(DataError):
            obs.validate_report([])


class TestConfigure:
    def test_configure_enables_metrics(self):
        assert not obs.is_enabled()
        obs.configure()
        assert obs.is_enabled()

    def test_configure_sets_paths(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        report_path = str(tmp_path / "r.json")
        obs.configure(trace_path=trace_path, report_path=report_path)
        assert obs.get_trace_path() == trace_path
        assert obs.get_report_path() == report_path

    def test_metrics_false_leaves_registry_disabled(self):
        obs.configure(level="WARNING", metrics=False)
        assert not obs.is_enabled()

    def test_reset_restores_pristine_state(self, tmp_path):
        obs.configure(level="INFO", trace_path=str(tmp_path / "t.jsonl"))
        obs.inc("x")
        obs.trace("s").finish()
        obs.reset()
        assert not obs.is_enabled()
        assert obs.get_traces() == []
        assert obs.get_trace_path() is None
        assert not logging.getLogger("repro").handlers
