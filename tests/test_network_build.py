"""Tests for repro.network.build."""

from repro.corpus import Corpus
from repro.network import (TERM_TYPE, build_collapsed_network,
                           build_term_network, network_statistics)


class TestTermNetwork:
    def test_cooccurrence_counts(self):
        corpus = Corpus.from_texts(["alpha beta", "alpha beta", "alpha gamma"])
        net = build_term_network(corpus)
        a = net.node_id(TERM_TYPE, "alpha")
        b = net.node_id(TERM_TYPE, "beta")
        g = net.node_id(TERM_TYPE, "gamma")
        assert net.link_weight(TERM_TYPE, a, TERM_TYPE, b) == 2.0
        assert net.link_weight(TERM_TYPE, a, TERM_TYPE, g) == 1.0

    def test_min_count_filters_rare_terms(self):
        corpus = Corpus.from_texts(["alpha beta", "alpha beta", "alpha rare"])
        net = build_term_network(corpus, min_count=2)
        assert not net.has_node(TERM_TYPE, "rare")

    def test_duplicate_words_counted_once_per_doc(self):
        corpus = Corpus.from_texts(["alpha alpha beta"])
        net = build_term_network(corpus)
        a = net.node_id(TERM_TYPE, "alpha")
        b = net.node_id(TERM_TYPE, "beta")
        assert net.link_weight(TERM_TYPE, a, TERM_TYPE, b) == 1.0


class TestCollapsedNetwork:
    def test_example_3_1_link_types(self, tiny_corpus):
        net = build_collapsed_network(tiny_corpus)
        types = {"-".join(lt) for lt in net.link_types()}
        assert "term-term" in types
        assert "author-term" in types
        assert "term-venue" in types
        assert "author-venue" in types

    def test_no_venue_venue_links_with_single_venue_per_doc(self,
                                                            tiny_corpus):
        net = build_collapsed_network(tiny_corpus)
        assert ("venue", "venue") not in net.link_types()

    def test_entity_term_weight_counts_documents(self):
        corpus = Corpus.from_texts(
            ["alpha beta", "alpha gamma"],
            entities=[{"author": ["a1"]}, {"author": ["a1"]}])
        net = build_collapsed_network(corpus)
        a1 = net.node_id("author", "a1")
        alpha = net.node_id(TERM_TYPE, "alpha")
        assert net.link_weight("author", a1, TERM_TYPE, alpha) == 2.0

    def test_author_author_links(self, tiny_corpus):
        net = build_collapsed_network(tiny_corpus)
        alice = net.node_id("author", "alice")
        bob = net.node_id("author", "bob")
        assert net.link_weight("author", alice, "author", bob) == 2.0

    def test_text_absent_mode(self, tiny_corpus):
        net = build_collapsed_network(tiny_corpus, include_text=False)
        assert TERM_TYPE not in net.node_types()
        assert net.num_links() > 0

    def test_entity_type_restriction(self, tiny_corpus):
        net = build_collapsed_network(tiny_corpus, entity_types=["venue"])
        assert "author" not in net.node_types()


class TestStatistics:
    def test_table_3_4_shape(self, tiny_corpus):
        net = build_collapsed_network(tiny_corpus)
        stats = network_statistics(net)
        assert stats["nodes"]["author"] == 4
        assert stats["nodes"]["venue"] == 2
        assert all({"pairs", "weight"} == set(v)
                   for v in stats["links"].values())
