"""MomentSketch: merge algebra, state round-trips, moment delegation.

The streaming design rests on one algebraic fact: the sketch merge is
**exactly associative**, and the in-order merge of per-shard sketches is
bit-identical to a sketch built over the whole log in one pass.  These
properties are pinned here with Hypothesis, alongside the (weaker,
floating-point) commutativity of the derived moments and the delegation
contract — a sketch's moments equal the module functions applied to the
same documents in the same order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DataError
from repro.strod import MomentSketch
from repro.strod.moments import (compute_whitener, first_moment,
                                 second_moment, whitened_third_moment,
                                 word_count_rows)
from repro.stream import build_shard_sketches, merge_sketches

VOCAB = 12

documents = st.lists(
    st.lists(st.integers(min_value=0, max_value=VOCAB - 1),
             min_size=0, max_size=8),
    min_size=0, max_size=6)


def _moments(sketch):
    m1 = sketch.first_moment()
    m2 = sketch.second_moment(1.0) if sketch.num_docs else None
    return m1, m2


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(a=documents, b=documents, c=documents)
    def test_merge_is_exactly_associative(self, a, b, c):
        sa = MomentSketch.from_docs(a, VOCAB)
        sb = MomentSketch.from_docs(b, VOCAB)
        sc = MomentSketch.from_docs(c, VOCAB)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.fingerprint() == right.fingerprint()
        assert left.num_docs == right.num_docs
        assert left.num_skipped == right.num_skipped
        if left.num_docs:
            m1l, m2l = _moments(left)
            m1r, m2r = _moments(right)
            assert np.array_equal(m1l, m1r)
            assert np.array_equal(m2l, m2r)

    @settings(max_examples=50, deadline=None)
    @given(a=documents, b=documents)
    def test_moments_commute_to_1e12(self, a, b):
        """Row order differs under commutation, so the derived moments
        agree only up to floating-point summation order — within 1e-12,
        the tolerance DESIGN §5.6 documents."""
        ab = MomentSketch.from_docs(a, VOCAB).merge(
            MomentSketch.from_docs(b, VOCAB))
        ba = MomentSketch.from_docs(b, VOCAB).merge(
            MomentSketch.from_docs(a, VOCAB))
        assert ab.num_docs == ba.num_docs
        if ab.num_docs:
            np.testing.assert_allclose(ab.first_moment(),
                                       ba.first_moment(), atol=1e-12)
            np.testing.assert_allclose(ab.second_moment(1.0),
                                       ba.second_moment(1.0), atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(shards=st.lists(documents, min_size=1, max_size=4))
    def test_merge_of_shards_is_bit_identical_to_whole(self, shards):
        whole = MomentSketch.from_docs(
            [doc for shard in shards for doc in shard], VOCAB)
        merged = merge_sketches(
            [MomentSketch.from_docs(shard, VOCAB) for shard in shards])
        assert whole.fingerprint() == merged.fingerprint()
        if whole.num_docs:
            assert np.array_equal(whole.first_moment(),
                                  merged.first_moment())
            assert np.array_equal(whole.second_moment(1.0),
                                  merged.second_moment(1.0))

    def test_parallel_shard_sketches_match_serial(self):
        rng = np.random.default_rng(5)
        shards = [[list(rng.integers(0, VOCAB, size=rng.integers(3, 9)))
                   for _ in range(10)] for _ in range(4)]
        serial = merge_sketches(
            [MomentSketch.from_docs(s, VOCAB) for s in shards])
        parallel = merge_sketches(
            build_shard_sketches(shards, VOCAB, workers=2))
        assert serial.fingerprint() == parallel.fingerprint()


class TestMomentDelegation:
    def test_sketch_moments_equal_module_functions(self):
        rng = np.random.default_rng(1)
        docs = [list(rng.integers(0, VOCAB, size=rng.integers(3, 10)))
                for _ in range(30)]
        sketch = MomentSketch.from_docs(docs, VOCAB)
        rows = word_count_rows(docs, VOCAB)
        m1 = first_moment(rows, VOCAB)
        assert np.array_equal(sketch.first_moment(), m1)
        assert np.array_equal(sketch.second_moment(1.0),
                              second_moment(rows, VOCAB, 1.0))
        whitener, _ = compute_whitener(sketch.second_moment(1.0), 3)
        assert np.array_equal(
            sketch.whitened_third_moment(whitener, 1.0),
            whitened_third_moment(rows, whitener, m1, 1.0))


class TestLifecycle:
    def test_update_skips_short_documents(self):
        sketch = MomentSketch(VOCAB, min_length=3)
        added = sketch.update([[0, 1, 2], [0], [], [1, 2, 3, 4]])
        assert added == 2
        assert sketch.num_docs == 2
        assert sketch.num_skipped == 2

    def test_out_of_vocab_token_raises(self):
        sketch = MomentSketch(4)
        with pytest.raises(DataError, match="outside vocabulary"):
            sketch.update([[0, 1, 4]])

    def test_expand_vocab_grows_never_shrinks(self):
        sketch = MomentSketch(4)
        sketch.update([[0, 1, 2]])
        sketch.expand_vocab(6)
        assert sketch.vocab_size == 6
        assert sketch.first_moment().shape == (6,)
        with pytest.raises(ConfigurationError):
            sketch.expand_vocab(3)

    def test_merge_requires_matching_min_length(self):
        with pytest.raises(ConfigurationError, match="min_length"):
            MomentSketch(4, min_length=3).merge(
                MomentSketch(4, min_length=4))

    def test_state_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(2)
        docs = [list(rng.integers(0, VOCAB, size=5)) for _ in range(12)]
        sketch = MomentSketch.from_docs(docs, VOCAB)
        clone = MomentSketch.from_state(sketch.to_state())
        assert clone.fingerprint() == sketch.fingerprint()
        assert np.array_equal(clone.first_moment(),
                              sketch.first_moment())

    def test_from_state_rejects_wrong_schema(self):
        state = MomentSketch.from_docs([[0, 1, 2]], 4).to_state()
        state["schema"] = "something/else"
        with pytest.raises(DataError, match="schema"):
            MomentSketch.from_state(state)

    def test_fingerprint_tracks_content(self):
        a = MomentSketch.from_docs([[0, 1, 2]], 4)
        b = MomentSketch.from_docs([[0, 1, 3]], 4)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint().startswith("v4-d1-s0-")
