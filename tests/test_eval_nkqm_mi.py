"""Tests for nKQM, judges, MI_K and robustness metrics."""

import numpy as np
import pytest

from repro.eval import (SimulatedPhraseJudge, agreement_weight, align_topics,
                        coherence_score, judge_phrases, label_top_phrases,
                        mutual_information_at_k, nkqm_at_k,
                        pairwise_discrepancy, phrase_quality_score,
                        recovery_error, run_variability,
                        weighted_cohens_kappa, z_scores)


class TestJudge:
    @pytest.fixture(scope="class")
    def judge(self, dblp_small):
        return SimulatedPhraseJudge(dblp_small.ground_truth, noise=0.0,
                                    seed=0)

    def test_planted_phrase_scores_highest(self, judge, dblp_small):
        truth = dblp_small.ground_truth
        leaf = next(p for p, spec in truth.paths.items()
                    if not spec.children)
        phrase = truth.normalized_phrases(leaf)[0]
        assert judge.base_score(phrase) == 5.0

    def test_fragment_scores_low(self, judge):
        # "vector machines" is a fragment of "support vector machines".
        assert judge.base_score("vector machines") <= 2.5

    def test_random_concat_scores_lowest(self, judge):
        assert judge.base_score("banana helicopter") == 1.5

    def test_topical_unigram_scores_medium(self, judge):
        assert judge.base_score("query") == 3.0

    def test_noisy_scores_clipped(self, dblp_small):
        judge = SimulatedPhraseJudge(dblp_small.ground_truth, noise=5.0,
                                     seed=1)
        scores = [judge.score("query processing") for _ in range(50)]
        assert all(1 <= s <= 5 for s in scores)


class TestAgreement:
    def test_unanimous_weight_one(self):
        assert agreement_weight([3, 3, 3]) == 1.0

    def test_spread_weight_lower(self):
        assert agreement_weight([1, 3, 5]) < agreement_weight([2, 3, 4])

    def test_single_judge(self):
        assert agreement_weight([4]) == 1.0

    def test_kappa_perfect_agreement(self):
        assert weighted_cohens_kappa([1, 3, 5, 2], [1, 3, 5, 2]) == \
            pytest.approx(1.0)

    def test_kappa_penalizes_disagreement(self):
        high = weighted_cohens_kappa([1, 2, 3, 4, 5], [1, 2, 3, 4, 5])
        low = weighted_cohens_kappa([1, 2, 3, 4, 5], [5, 4, 3, 2, 1])
        assert high > low


class TestNKQM:
    def test_better_ranking_scores_higher(self, dblp_small):
        truth = dblp_small.ground_truth
        judges = [SimulatedPhraseJudge(truth, noise=0.3, seed=s)
                  for s in (0, 1, 2)]
        leaf_paths = [p for p, spec in truth.paths.items()
                      if not spec.children][:4]
        good = [truth.normalized_phrases(p) for p in leaf_paths]
        bad = [["vector machines", "banana helicopter", "query",
                "random words", "odd pair"] for _ in leaf_paths]
        pool = {phrase for ranking in good + bad for phrase in ranking}
        judged = judge_phrases(sorted(pool), judges)
        assert nkqm_at_k(good, judged, k=4) > nkqm_at_k(bad, judged, k=4)

    def test_bounded_by_one(self, dblp_small):
        truth = dblp_small.ground_truth
        judges = [SimulatedPhraseJudge(truth, noise=0.0, seed=0)]
        rankings = [truth.normalized_phrases((0, 0))]
        judged = judge_phrases(rankings[0], judges)
        assert 0 <= nkqm_at_k(rankings, judged, k=3) <= 1.0 + 1e-9

    def test_empty_rankings(self):
        assert nkqm_at_k([], {"a": [3]}, k=5) == 0.0


class TestExpertScores:
    def test_coherent_list_scores_higher(self, dblp_small):
        from repro.eval import LabelAffinity
        affinity = LabelAffinity(dblp_small.corpus)
        truth = dblp_small.ground_truth
        coherent = truth.normalized_phrases((0, 0))
        mixed = [truth.normalized_phrases((a, 0))[0] for a in range(4)]
        rng = np.random.default_rng(0)
        assert coherence_score(coherent, affinity, noise=0.0, rng=rng) > \
            coherence_score(mixed, affinity, noise=0.0, rng=rng)

    def test_quality_score_tracks_judge(self, dblp_small):
        judge = SimulatedPhraseJudge(dblp_small.ground_truth, noise=0.0,
                                     seed=0)
        rng = np.random.default_rng(0)
        good = phrase_quality_score(["query processing"], judge,
                                    noise=0.0, rng=rng)
        bad = phrase_quality_score(["banana helicopter"], judge,
                                   noise=0.0, rng=rng)
        assert good > bad

    def test_z_scores_centered(self):
        scores = z_scores({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert scores["b"] > 0 > scores["a"]


class TestMIK:
    def test_labeling_picks_best_topic(self):
        rankings = [[("alpha", 1.0), ("shared", 0.9)],
                    [("beta", 1.0), ("shared", 0.3)]]
        labels = label_top_phrases(rankings, k=2)
        assert labels == {"alpha": 0, "beta": 1, "shared": 0}

    def test_oracle_topics_give_high_mi(self, dblp_small):
        """Perfect per-area rankings give much higher MI than shuffled."""
        truth = dblp_small.ground_truth
        corpus = dblp_small.corpus
        oracle = []
        for area in range(6):
            phrases = []
            for path, spec in truth.paths.items():
                if path[:1] == (area,) and path:
                    phrases.extend(truth.normalized_phrases(path))
            oracle.append([(p, 1.0) for p in phrases])
        rng = np.random.default_rng(0)
        pool = [p for ranking in oracle for p, _ in ranking]
        rng.shuffle(pool)
        shuffled = [[(p, 1.0) for p in pool[i::6]] for i in range(6)]
        mi_oracle = mutual_information_at_k(corpus, oracle, k=10)
        mi_shuffled = mutual_information_at_k(corpus, shuffled, k=10)
        # A shuffled partition of discriminative phrases still carries
        # dependence (MI measures association, not grouping quality),
        # but the aligned grouping must carry visibly more.
        assert mi_oracle > 1.3 * mi_shuffled

    def test_mi_nonnegative(self, dblp_small):
        rankings = [[("data", 1.0)], [("learning", 1.0)]]
        value = mutual_information_at_k(dblp_small.corpus, rankings, k=1)
        assert value >= 0


class TestRobustness:
    def test_alignment_recovers_permutation(self):
        rng = np.random.default_rng(0)
        reference = rng.dirichlet(np.ones(10), size=4)
        permuted = reference[[2, 0, 3, 1]]
        aligned = align_topics(reference, permuted)
        assert np.allclose(aligned, reference)

    def test_identical_runs_zero_discrepancy(self):
        rng = np.random.default_rng(0)
        phi = rng.dirichlet(np.ones(8), size=3)
        assert pairwise_discrepancy([phi, phi.copy()]) == pytest.approx(0.0)

    def test_different_runs_positive(self):
        rng = np.random.default_rng(0)
        a = rng.dirichlet(np.ones(8), size=3)
        b = rng.dirichlet(np.ones(8), size=3)
        assert pairwise_discrepancy([a, b]) > 0

    def test_recovery_error_zero_for_exact(self):
        rng = np.random.default_rng(0)
        phi = rng.dirichlet(np.ones(8), size=3)
        assert recovery_error(phi, phi[[1, 0, 2]]) == pytest.approx(0.0)

    def test_run_variability_calls_fit(self):
        calls = []

        def fit(seed):
            calls.append(seed)
            rng = np.random.default_rng(seed)
            return rng.dirichlet(np.ones(6), size=2)

        value = run_variability(fit, num_runs=3, seeds=(0, 1, 2))
        assert calls == [0, 1, 2]
        assert value > 0
