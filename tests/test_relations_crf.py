"""Tests for supervised relation learning (Section 6.2)."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.relations import (FEATURE_NAMES, CollaborationNetwork,
                             FeatureScaler, HierarchicalRelationCRF,
                             SupervisedPairClassifier, build_candidate_graph,
                             evaluate_predictions, pair_features)


@pytest.fixture(scope="module")
def setup():
    from repro.datasets import DBLPConfig, generate_dblp
    dataset = generate_dblp(DBLPConfig(max_authors=250), seed=7)
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    graph = build_candidate_graph(network)
    truth = {r.advisee: r.advisor for r in dataset.ground_truth.advising}
    advisees = sorted(truth)
    rng = np.random.default_rng(0)
    rng.shuffle(advisees)
    half = len(advisees) // 2
    train = {a: truth[a] for a in advisees[:half]}
    test = {a: truth[a] for a in advisees[half:]}
    return network, graph, train, test


class TestFeatures:
    def test_feature_vector_shape(self, setup):
        network, graph, _, _ = setup
        author = graph.authors[0]
        candidate = graph.advisors_of(author)[0]
        features = pair_features(network, candidate)
        assert features.shape == (len(FEATURE_NAMES),)

    def test_root_candidate_uses_indicator(self, setup):
        network, graph, _, _ = setup
        author = graph.authors[0]
        root = next(c for c in graph.advisors_of(author)
                    if c.advisor == "")
        features = pair_features(network, root)
        assert features[-1] == 1.0
        assert np.all(features[:-1] == 0.0)

    def test_scaler_standardizes(self):
        scaler = FeatureScaler()
        data = np.array([[1.0, 10.0], [3.0, 10.0], [5.0, 10.0]])
        scaled = scaler.fit(data[:, :2]).transform(data[:, :2])
        assert scaled[:, 0].mean() == pytest.approx(0.0, abs=1e-9)
        # Constant columns survive without division by zero.
        assert np.all(np.isfinite(scaled))


class TestSupervisedClassifier:
    def test_beats_chance_on_held_out(self, setup):
        network, graph, train, test = setup
        classifier = SupervisedPairClassifier(epochs=150, seed=0)
        classifier.fit(network, graph, train)
        result = classifier.predict(network, graph)
        accuracy = evaluate_predictions(result.predictions(), test)
        assert accuracy.advisee_accuracy > 0.5

    def test_weights_learned(self, setup):
        network, graph, train, _ = setup
        classifier = SupervisedPairClassifier(epochs=50, seed=0)
        classifier.fit(network, graph, train)
        assert classifier.weights_ is not None
        assert np.any(classifier.weights_ != 0)


class TestCRF:
    def test_beats_unsupervised_with_training_data(self, setup):
        from repro.relations import TPFG
        network, graph, train, test = setup
        crf = HierarchicalRelationCRF(epochs=150, seed=0)
        crf.fit(network, graph, train)
        crf_acc = evaluate_predictions(
            crf.predict(network, graph).predictions(), test)
        tpfg_acc = evaluate_predictions(
            TPFG(max_iter=15).fit(graph).predictions(), test)
        assert crf_acc.advisee_accuracy >= tpfg_acc.advisee_accuracy

    def test_more_training_data_does_not_hurt(self, setup):
        network, graph, train, test = setup
        small_train = dict(list(train.items())[:len(train) // 4])
        small = HierarchicalRelationCRF(epochs=150, seed=0)
        small.fit(network, graph, small_train)
        large = HierarchicalRelationCRF(epochs=150, seed=0)
        large.fit(network, graph, train)
        small_acc = evaluate_predictions(
            small.predict(network, graph).predictions(), test)
        large_acc = evaluate_predictions(
            large.predict(network, graph).predictions(), test)
        assert large_acc.advisee_accuracy >= small_acc.advisee_accuracy - 0.05

    def test_predict_requires_fit(self, setup):
        network, graph, _, _ = setup
        with pytest.raises(NotFittedError):
            HierarchicalRelationCRF().predict(network, graph)

    def test_fit_with_no_labels_raises(self, setup):
        network, graph, _, _ = setup
        with pytest.raises(NotFittedError):
            HierarchicalRelationCRF().fit(network, graph, {})
