"""Tests for held-out perplexity and sparse STROD whitening."""

import numpy as np
import pytest

from repro.datasets import generate_planted_lda
from repro.errors import ConfigurationError
from repro.eval import fold_in, held_out_perplexity, split_document
from repro.phrases.ranking import FlatTopicModel
from repro.strod import (STROD, compute_whitener, second_moment,
                         compute_whitener_sparse, sparse_pair_moment,
                         word_count_rows)


class TestPerplexity:
    def test_true_model_beats_uniform(self, planted_small):
        truth = FlatTopicModel(
            rho=planted_small.alpha / planted_small.alpha.sum(),
            phi=planted_small.phi)
        uniform = FlatTopicModel(
            rho=np.full(4, 0.25),
            phi=np.full((4, planted_small.vocab_size),
                        1.0 / planted_small.vocab_size))
        docs = planted_small.docs[:150]
        true_ppl = held_out_perplexity(truth, docs, seed=0)
        uniform_ppl = held_out_perplexity(uniform, docs, seed=0)
        assert true_ppl < uniform_ppl
        assert uniform_ppl == pytest.approx(planted_small.vocab_size,
                                            rel=1e-6)

    def test_fold_in_returns_distribution(self, planted_small):
        truth = FlatTopicModel(
            rho=planted_small.alpha / planted_small.alpha.sum(),
            phi=planted_small.phi)
        theta = fold_in(truth, planted_small.docs[0][:20])
        assert theta.sum() == pytest.approx(1.0)
        assert (theta >= 0).all()

    def test_fold_in_empty_doc_uniform(self, planted_small):
        truth = FlatTopicModel(
            rho=planted_small.alpha / planted_small.alpha.sum(),
            phi=planted_small.phi)
        theta = fold_in(truth, [])
        assert np.allclose(theta, 0.25)

    def test_split_document_partitions(self):
        rng = np.random.default_rng(0)
        observed, held_out = split_document(list(range(10)), rng, 0.5)
        assert sorted(observed + held_out) == list(range(10))
        assert len(observed) == 5

    def test_invalid_fraction(self, planted_small):
        truth = FlatTopicModel(rho=np.full(4, 0.25),
                               phi=planted_small.phi)
        with pytest.raises(ConfigurationError):
            held_out_perplexity(truth, planted_small.docs[:5],
                                observed_fraction=1.5)

    def test_strod_perplexity_near_truth(self):
        planted = generate_planted_lda(num_docs=2000, num_topics=4,
                                       vocab_size=100, doc_length=50,
                                       seed=5)
        model = STROD(num_topics=4,
                      alpha0=float(planted.alpha.sum()),
                      seed=0).fit(planted.docs, planted.vocab_size)
        truth = FlatTopicModel(
            rho=planted.alpha / planted.alpha.sum(), phi=planted.phi)
        docs = planted.docs[:200]
        strod_ppl = held_out_perplexity(model.to_flat(), docs, seed=0)
        true_ppl = held_out_perplexity(truth, docs, seed=0)
        assert strod_ppl < 1.15 * true_ppl


class TestSparseWhitening:
    def test_sparse_pair_moment_matches_dense(self, planted_small):
        rows = word_count_rows(planted_small.docs,
                               planted_small.vocab_size)
        alpha0 = float(planted_small.alpha.sum())
        sparse = sparse_pair_moment(rows, planted_small.vocab_size)
        dense = second_moment(rows, planted_small.vocab_size, alpha0)
        from repro.strod import first_moment
        m1 = first_moment(rows, planted_small.vocab_size)
        correction = (alpha0 / (alpha0 + 1)) * np.outer(m1, m1)
        # dense M2 = sparse pair moment - rank-one correction, exactly.
        assert np.allclose(dense, sparse.toarray() - correction,
                           atol=1e-12)

    def test_sparse_whitener_matches_dense_subspace(self, planted_small):
        rows = word_count_rows(planted_small.docs,
                               planted_small.vocab_size)
        alpha0 = float(planted_small.alpha.sum())
        dense_m2 = second_moment(rows, planted_small.vocab_size, alpha0)
        w_dense, _ = compute_whitener(dense_m2, 4)
        w_sparse, b_sparse, _ = compute_whitener_sparse(
            rows, planted_small.vocab_size, alpha0, 4)
        # Whiteners may differ by rotation/sign; both must whiten M2.
        gram = w_sparse.T @ dense_m2 @ w_sparse
        assert np.allclose(gram, np.eye(4), atol=1e-6)
        assert np.allclose(w_sparse.T @ b_sparse, np.eye(4), atol=1e-6)

    def test_sparse_strod_matches_dense_recovery(self):
        from repro.eval import recovery_error
        planted = generate_planted_lda(num_docs=1200, num_topics=4,
                                       vocab_size=90, doc_length=50,
                                       seed=6)
        dense = STROD(num_topics=4, alpha0=1.0, seed=0).fit(
            planted.docs, planted.vocab_size)
        sparse = STROD(num_topics=4, alpha0=1.0, sparse=True,
                       seed=0).fit(planted.docs, planted.vocab_size)
        dense_err = recovery_error(planted.phi, dense.phi)
        sparse_err = recovery_error(planted.phi, sparse.phi)
        assert abs(dense_err - sparse_err) < 0.05

    def test_num_topics_bound(self, planted_small):
        rows = word_count_rows(planted_small.docs,
                               planted_small.vocab_size)
        with pytest.raises(ConfigurationError):
            compute_whitener_sparse(rows, planted_small.vocab_size,
                                    1.0, planted_small.vocab_size)
