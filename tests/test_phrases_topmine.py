"""Tests for the ToPMine pipeline (Section 4.3)."""

import numpy as np
import pytest

from repro.phrases import ToPMine, ToPMineConfig, partition_is_valid


@pytest.fixture(scope="module")
def fitted(request):
    from repro.datasets import DBLPConfig, generate_dblp
    dataset = generate_dblp(DBLPConfig(max_authors=60), seed=3)
    topmine = ToPMine(ToPMineConfig(num_topics=6, lda_iterations=20),
                      seed=0)
    return dataset, topmine.fit(dataset.corpus)


class TestPipeline:
    def test_partitions_valid(self, fitted):
        dataset, result = fitted
        for doc, partition in zip(dataset.corpus, result.partitions):
            assert partition_is_valid(doc, partition)

    def test_model_shapes(self, fitted):
        dataset, result = fitted
        assert result.model.num_topics == 6
        assert result.model.vocab_size == len(dataset.corpus.vocabulary)
        assert np.allclose(result.model.phi.sum(axis=1), 1.0, atol=1e-6)

    def test_doc_topics_are_distributions(self, fitted):
        _, result = fitted
        assert np.allclose(result.doc_topics.sum(axis=1), 1.0, atol=1e-6)

    def test_rankings_sorted_descending(self, fitted):
        _, result = fitted
        for ranking in result.rankings:
            scores = [s for _, s in ranking]
            assert scores == sorted(scores, reverse=True)

    def test_topics_have_multiword_phrases(self, fitted):
        _, result = fitted
        topics_with_phrases = sum(
            1 for ranking in result.rankings
            if any(len(p) >= 2 for p, _ in ranking[:10]))
        assert topics_with_phrases >= 4

    def test_top_phrases_topically_pure(self, fitted):
        """Top phrases of each topic mostly come from one true area."""
        dataset, result = fitted
        truth = dataset.ground_truth
        vocab = dataset.corpus.vocabulary
        phrase_area = {}
        for path, spec in truth.paths.items():
            if not path:
                continue
            for phrase in truth.normalized_phrases(path):
                key = tuple(vocab.id_of(w) for w in phrase.split()
                            if w in vocab)
                phrase_area[key] = path[0]
        pure = 0
        scored = 0
        for ranking in result.rankings:
            areas = [phrase_area[p] for p, _ in ranking[:8]
                     if p in phrase_area]
            if len(areas) >= 3:
                scored += 1
                modal = max(set(areas), key=areas.count)
                if areas.count(modal) / len(areas) >= 0.6:
                    pure += 1
        assert scored >= 4
        assert pure / scored >= 0.6

    def test_phrase_topic_counts_match_frequency(self, fitted):
        _, result = fitted
        for phrase, vector in result.phrase_topic_counts.items():
            occurrences = sum(partition.count(phrase)
                              for partition in result.partitions)
            assert vector.sum() == pytest.approx(occurrences)

    def test_top_phrases_renders_strings(self, fitted):
        dataset, result = fitted
        rendered = result.top_phrases(0, 3, dataset.corpus)
        assert all(isinstance(p, str) for p in rendered)

    def test_mine_only_entry_point(self, fitted):
        dataset, _ = fitted
        topmine = ToPMine(ToPMineConfig(num_topics=2), seed=0)
        counts, partitions = topmine.mine(dataset.corpus)
        assert len(partitions) == len(dataset.corpus)
        assert len(counts) > 0
