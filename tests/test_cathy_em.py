"""Tests for the homogeneous CATHY EM (Section 3.1)."""

import numpy as np
import pytest

from repro.cathy import CathyEM
from repro.corpus import Corpus
from repro.errors import ConfigurationError, NotFittedError
from repro.network import TERM_TYPE, build_term_network


@pytest.fixture
def two_topic_network():
    """Two cliques of terms with no cross links: a trivially separable
    two-topic network."""
    texts = (["red green blue"] * 10) + (["cat dog bird"] * 10)
    corpus = Corpus.from_texts(texts)
    return build_term_network(corpus)


class TestFit:
    def test_recovers_separable_clusters(self, two_topic_network):
        estimator = CathyEM(num_topics=2, seed=0)
        model = estimator.fit(two_topic_network)
        top0 = set(np.argsort(-model.phi[0])[:3])
        top1 = set(np.argsort(-model.phi[1])[:3])
        assert top0.isdisjoint(top1)
        names0 = {model.node_names[i] for i in top0}
        assert names0 in ({"red", "green", "blue"}, {"cat", "dog", "bird"})

    def test_phi_rows_are_distributions(self, two_topic_network):
        model = CathyEM(num_topics=2, seed=0).fit(two_topic_network)
        assert np.allclose(model.phi.sum(axis=1), 1.0)

    def test_rho_sums_to_total_weight(self, two_topic_network):
        model = CathyEM(num_topics=2, seed=0).fit(two_topic_network)
        assert model.rho.sum() == pytest.approx(
            two_topic_network.total_weight(), rel=1e-3)

    def test_likelihood_improves_with_restarts(self, two_topic_network):
        single = CathyEM(num_topics=3, restarts=1, seed=1).fit(
            two_topic_network)
        multi = CathyEM(num_topics=3, restarts=5, seed=1).fit(
            two_topic_network)
        assert multi.log_likelihood >= single.log_likelihood - 1e-9

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CathyEM(num_topics=0)
        with pytest.raises(ConfigurationError):
            CathyEM(num_topics=2, restarts=0)

    def test_empty_network_rejected(self):
        corpus = Corpus.from_texts(["single"])
        network = build_term_network(corpus)
        with pytest.raises(ConfigurationError):
            CathyEM(num_topics=2).fit(network)


class TestMonotoneLikelihood:
    def test_em_monotone(self, two_topic_network):
        """EM likelihood is non-decreasing across iteration budgets."""
        values = []
        for iterations in (1, 3, 10, 50):
            estimator = CathyEM(num_topics=2, max_iter=iterations, seed=7)
            model = estimator.fit(two_topic_network)
            values.append(model.log_likelihood)
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))


class TestSubnetworks:
    def test_expected_weights_sum_to_observed(self, two_topic_network):
        estimator = CathyEM(num_topics=2, seed=0)
        estimator.fit(two_topic_network)
        per_topic = estimator.expected_link_weights(two_topic_network)
        for i, j, weight in two_topic_network.links((TERM_TYPE, TERM_TYPE)):
            total = sum(bucket.get((i, j), 0.0) for bucket in per_topic)
            assert total == pytest.approx(weight, rel=1e-6)

    def test_subnetworks_partition_cliques(self, two_topic_network):
        estimator = CathyEM(num_topics=2, seed=0)
        estimator.fit(two_topic_network)
        subs = estimator.subnetworks(two_topic_network)
        names = [set(sub.node_names(TERM_TYPE)) for sub in subs]
        assert {"red", "green", "blue"} in names
        assert {"cat", "dog", "bird"} in names

    def test_requires_fit(self, two_topic_network):
        with pytest.raises(NotFittedError):
            CathyEM(num_topics=2).expected_link_weights(two_topic_network)

    def test_topic_distribution_dict(self, two_topic_network):
        model = CathyEM(num_topics=2, seed=0).fit(two_topic_network)
        dist = model.topic_distribution(0)
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)
