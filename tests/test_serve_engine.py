"""ModelQueryEngine: indexes, cache, batch, and search semantics."""

import pytest

from repro.errors import ConfigurationError, DataError
from repro.obs import get_registry
from repro.serve import ModelQueryEngine

from .test_serve_artifact import fitted  # noqa: F401 - shared fixture


@pytest.fixture()
def engine(fitted):  # noqa: F811 - pytest fixture injection
    miner, result = fitted
    return ModelQueryEngine.from_result(result,
                                        config=miner._artifact_config())


class TestQueries:
    def test_model_info_stats(self, engine, fitted):  # noqa: F811
        _, result = fitted
        info = engine.model_info()
        assert info["stats"]["num_topics"] == result.hierarchy.num_topics
        assert info["stats"]["height"] == result.hierarchy.height
        assert info["stats"]["width"] == result.hierarchy.width
        assert info["stats"]["entity_types"] == ["author", "venue"]

    def test_topic_matches_hierarchy(self, engine, fitted):  # noqa: F811
        _, result = fitted
        for topic in result.hierarchy.topics():
            answer = engine.topic(topic.notation, max_phrases=3)
            assert answer["topic"] == topic.notation
            assert answer["rho"] == pytest.approx(topic.rho)
            assert [p for p, _ in answer["phrases"]] == \
                topic.top_phrases(3)
            assert answer["children"] == \
                [c.notation for c in topic.children]

    def test_topic_clamps_short_phrase_lists(self, engine):
        answer = engine.topic("o/1", max_phrases=10_000)
        assert len(answer["phrases"]) == answer["num_phrases"]

    def test_children_summaries(self, engine, fitted):  # noqa: F811
        _, result = fitted
        answer = engine.children("o")
        assert [c["topic"] for c in answer["children"]] == \
            [c.notation for c in result.hierarchy.root.children]
        for child in answer["children"]:
            assert child["label"]

    def test_unknown_topic_raises_data_error(self, engine):
        with pytest.raises(DataError, match="no topic"):
            engine.topic("o/9/9")

    def test_parent_links(self, engine):
        assert engine.topic("o")["parent"] is None
        assert engine.topic("o/1")["parent"] == "o"

    def test_top_phrases_ranked_descending(self, engine):
        phrases = engine.top_phrases("o/1", k=10)["phrases"]
        scores = [score for _, score in phrases]
        assert scores == sorted(scores, reverse=True)


class TestSearch:
    def test_prefix_search(self, engine):
        answer = engine.search_phrases("support", mode="prefix")
        assert answer["num_matches"] >= 1
        assert all(m["phrase"].startswith("support")
                   for m in answer["matches"])

    def test_substring_search_superset_of_prefix(self, engine):
        prefix = engine.search_phrases("vector", mode="prefix")
        substring = engine.search_phrases("vector", mode="substring")
        assert substring["num_matches"] >= prefix["num_matches"]
        assert any("vector" in m["phrase"] for m in substring["matches"])

    def test_search_topics_are_ranked(self, engine):
        for match in engine.search_phrases("s", mode="prefix",
                                           limit=50)["matches"]:
            scores = [score for _, score in match["topics"]]
            assert scores == sorted(scores, reverse=True)

    def test_no_matches_is_empty_not_error(self, engine):
        answer = engine.search_phrases("zzz-no-such-phrase")
        assert answer["num_matches"] == 0
        assert answer["matches"] == []

    def test_bad_mode_rejected(self, engine):
        with pytest.raises(ConfigurationError, match="search mode"):
            engine.search_phrases("x", mode="regex")

    def test_limit_respected(self, engine):
        answer = engine.search_phrases("", mode="prefix", limit=2)
        assert len(answer["matches"]) <= 2
        assert answer["num_matches"] >= len(answer["matches"])


class TestEntityRoles:
    def test_roles_match_analyzer(self, engine, fitted):  # noqa: F811
        _, result = fitted
        answer = engine.entity_roles("alice", entity_type="author")
        expected = result.roles.entity_topic_frequencies("author")["alice"]
        assert answer["roles"]["author"]["frequencies"] == \
            pytest.approx(expected)
        distribution = result.roles.entity_distribution("author", "alice")
        assert answer["roles"]["author"]["distribution"] == \
            pytest.approx(distribution)

    def test_all_types_by_default(self, engine):
        answer = engine.entity_roles("alice")
        assert set(answer["roles"]) == {"author"}

    def test_unknown_entity_raises(self, engine):
        with pytest.raises(DataError, match="no entity"):
            engine.entity_roles("nobody-here")

    def test_unknown_type_raises(self, engine):
        with pytest.raises(DataError, match="entity type"):
            engine.entity_roles("alice", entity_type="planet")


class TestCache:
    def test_hits_and_misses_counted(self, fitted):  # noqa: F811
        miner, result = fitted
        engine = ModelQueryEngine.from_result(result)
        engine.top_phrases("o", 5)
        before = engine.cache_info()
        assert before["misses"] >= 1 and before["hits"] == 0
        first = engine.top_phrases("o", 5)
        second = engine.top_phrases("o", 5)
        info = engine.cache_info()
        assert info["hits"] == 2
        assert first is second  # the cached object is reused

    def test_metrics_registry_mirrors_counters(self, fitted):  # noqa: F811
        import repro.obs as obs

        _, result = fitted
        obs.configure(metrics=True)
        engine = ModelQueryEngine.from_result(result)
        engine.top_phrases("o", 5)
        engine.top_phrases("o", 5)
        registry = get_registry()
        assert registry.counter("serve.cache.misses") >= 1
        assert registry.counter("serve.cache.hits") >= 1

    def test_capacity_bounds_cache(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result, cache_size=2)
        for k in range(10):
            engine.top_phrases("o", k)
        assert engine.cache_info()["size"] <= 2

    def test_zero_capacity_disables_cache(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result, cache_size=0)
        engine.top_phrases("o", 5)
        engine.top_phrases("o", 5)
        info = engine.cache_info()
        assert info["hits"] == 0 and info["size"] == 0


class TestBatch:
    def test_mixed_batch(self, engine):
        answer = engine.batch([
            {"op": "top_phrases", "args": {"topic_id": "o", "k": 2}},
            {"op": "topic", "args": {"topic_id": "o/404"}},
            {"op": "frobnicate"},
            {"op": "search_phrases", "args": {"query": "support"}},
        ])
        results = answer["results"]
        assert results[0]["ok"] and len(results[0]["result"]["phrases"]) == 2
        assert not results[1]["ok"] and results[1]["status"] == 404
        assert not results[2]["ok"] and results[2]["status"] == 400
        assert results[3]["ok"]

    def test_bad_args_reported_inband(self, engine):
        answer = engine.batch([{"op": "topic", "args": {"nope": 1}}])
        assert answer["results"][0]["status"] == 400

    def test_non_list_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.batch({"op": "topic"})
