"""Tests for :mod:`repro.lint` — the invariant linter.

Structure per rule: a positive fixture that must be flagged, a negative
fixture that must pass, a pragma-suppressed variant, and (where the
rule has one) an allowlisted path that exempts the same code.  On top
of that: pragma hygiene (RL000), the JSON report schema contract, the
CLI exit codes on a seeded-violation tree, and the self-check that the
shipped repository lints clean with no more suppressions than it
shipped with.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (REPORT_SCHEMA, lint_file, lint_paths,
                        lint_project, render_json, rule_catalogue,
                        to_document)
from repro.lint.cli import main as lint_main
from repro.lint.rules import PRAGMA_RE, RULES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Number of suppression pragmas the repository ships with.  Growing
#: this number is a reviewed decision, not a drive-by: every new pragma
#: weakens a machine-checked invariant and needs a written reason.
SHIPPED_PRAGMA_BASELINE = 4  # PR-6 added the span JSONL append stream

SOLVER_PATH = "src/repro/cathy/somefile.py"


def hits(path, source, rule=None):
    """Rule ids flagged for ``source`` linted as ``path``."""
    violations, _, _ = lint_file(path, textwrap.dedent(source))
    ids = [v.rule for v in violations]
    if rule is not None:
        return [i for i in ids if i == rule]
    return ids


# --------------------------------------------------------------------- RL001
class TestNoGlobalRng:
    def test_flags_numpy_global_seed(self):
        src = """
        import numpy as np
        np.random.seed(42)
        """
        assert hits(SOLVER_PATH, src, "RL001")

    def test_flags_legacy_draws_under_any_alias(self):
        src = """
        import numpy
        x = numpy.random.randint(0, 10)
        """
        assert hits(SOLVER_PATH, src, "RL001")

    def test_flags_stdlib_random_import_and_calls(self):
        src = """
        import random
        random.shuffle(items)
        """
        assert len(hits(SOLVER_PATH, src, "RL001")) == 2

    def test_flags_from_random_import(self):
        assert hits(SOLVER_PATH, "from random import shuffle\n", "RL001")

    def test_flags_constructor_outside_seeding_modules(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(0)
        """
        assert hits(SOLVER_PATH, src, "RL001")

    def test_allows_constructor_in_seeding_modules(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(0)
        """
        assert not hits("src/repro/utils.py", src, "RL001")
        assert not hits("src/repro/parallel/seeding.py", src, "RL001")

    def test_allows_constructor_in_tests(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(0)
        """
        assert not hits("tests/test_x.py", src, "RL001")

    def test_flags_legacy_even_in_seeding_modules(self):
        src = """
        import numpy as np
        np.random.seed(3)
        """
        assert hits("src/repro/parallel/seeding.py", src, "RL001")

    def test_flags_bit_generator_outside_seeding_modules(self):
        # A blocked kernel must not mint its own bit generator for
        # batched draws; the Generator arrives via the seeding layer.
        src = """
        import numpy as np
        rng = np.random.Generator(np.random.PCG64(7))
        """
        assert hits(SOLVER_PATH, src, "RL001")

    def test_allows_bit_generator_in_seeding_modules(self):
        src = """
        import numpy as np
        rng = np.random.Generator(np.random.PCG64(7))
        """
        assert not hits("src/repro/parallel/seeding.py", src, "RL001")

    def test_generator_method_calls_pass(self):
        src = """
        from repro.utils import ensure_rng
        rng = ensure_rng(0)
        x = rng.random()
        rng.shuffle(items)
        """
        assert not hits(SOLVER_PATH, src, "RL001")


# --------------------------------------------------------------------- RL002
class TestNoWallClock:
    def test_flags_time_time_in_solver(self):
        src = """
        import time
        stamp = time.time()
        """
        assert hits(SOLVER_PATH, src, "RL002")

    def test_flags_datetime_now_via_from_import(self):
        src = """
        from datetime import datetime
        stamp = datetime.now()
        """
        assert hits(SOLVER_PATH, src, "RL002")

    def test_flags_os_urandom(self):
        src = """
        import os
        blob = os.urandom(16)
        """
        assert hits(SOLVER_PATH, src, "RL002")

    def test_monotonic_timing_passes(self):
        src = """
        import time
        start = time.perf_counter()
        elapsed = time.monotonic() - start
        """
        assert not hits(SOLVER_PATH, src, "RL002")

    def test_allowlists_obs_and_serve(self):
        src = """
        import time
        stamp = time.time()
        """
        assert not hits("src/repro/obs/report.py", src, "RL002")
        assert not hits("src/repro/serve/http.py", src, "RL002")

    def test_not_applied_outside_library(self):
        src = """
        import time
        stamp = time.time()
        """
        assert not hits("tests/test_x.py", src, "RL002")


# --------------------------------------------------------------------- RL003
class TestAtomicWritesOnly:
    def test_flags_open_for_write(self):
        src = """
        with open("out.json", "w") as handle:
            handle.write("{}")
        """
        assert hits(SOLVER_PATH, src, "RL003")

    def test_flags_append_and_keyword_mode(self):
        src = """
        f = open("log.txt", mode="a")
        """
        assert hits(SOLVER_PATH, src, "RL003")

    def test_flags_json_dump_and_np_save(self):
        src = """
        import json
        import numpy as np
        json.dump(obj, handle)
        np.save("arr.npy", arr)
        """
        assert len(hits(SOLVER_PATH, src, "RL003")) == 2

    def test_flags_path_write_text(self):
        src = """
        from pathlib import Path
        Path("x").write_text("data")
        """
        assert hits(SOLVER_PATH, src, "RL003")

    def test_read_only_open_passes(self):
        src = """
        with open("data.json") as handle:
            blob = handle.read()
        binary = open("data.bin", "rb")
        """
        assert not hits(SOLVER_PATH, src, "RL003")

    def test_json_dumps_passes(self):
        src = """
        import json
        text = json.dumps(obj)
        """
        assert not hits(SOLVER_PATH, src, "RL003")

    def test_allowlists_atomic_module(self):
        src = """
        f = open("x", "w")
        """
        assert not hits("src/repro/resilience/atomic.py", src, "RL003")

    def test_not_applied_to_tests(self):
        src = """
        f = open("x", "w")
        """
        assert not hits("tests/test_x.py", src, "RL003")


# --------------------------------------------------------------------- RL004
class TestTypedErrorsOnly:
    def test_flags_bare_except(self):
        src = """
        try:
            work()
        except:
            handle()
        """
        assert hits(SOLVER_PATH, src, "RL004")

    def test_flags_swallowed_exception(self):
        src = """
        try:
            work()
        except Exception:
            pass
        """
        assert hits(SOLVER_PATH, src, "RL004")

    def test_flags_swallow_in_tuple(self):
        src = """
        try:
            work()
        except (ValueError, Exception):
            continue
        """
        # 'continue' outside a loop still parses as a module under ast?
        # It does not - wrap in a loop to keep the fixture valid.
        src = """
        for item in items:
            try:
                work(item)
            except (ValueError, Exception):
                continue
        """
        assert hits(SOLVER_PATH, src, "RL004")

    def test_flags_untyped_raise(self):
        src = """
        raise RuntimeError("boom")
        """
        assert hits(SOLVER_PATH, src, "RL004")

    def test_handled_broad_except_passes(self):
        src = """
        try:
            work()
        except Exception as exc:
            log(exc)
        """
        assert not hits(SOLVER_PATH, src, "RL004")

    def test_reraise_as_typed_passes(self):
        src = """
        from repro.errors import DataError
        try:
            work()
        except Exception as exc:
            raise DataError(str(exc)) from exc
        """
        assert not hits(SOLVER_PATH, src, "RL004")

    def test_typed_narrow_swallow_passes(self):
        src = """
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        """
        assert not hits(SOLVER_PATH, src, "RL004")


# --------------------------------------------------------------------- RL005
class TestDottedMetricNames:
    def test_flags_undotted_literal(self):
        src = """
        from repro.obs import inc
        inc("checkpoints")
        """
        assert hits(SOLVER_PATH, src, "RL005")

    def test_flags_uppercase_literal(self):
        src = """
        from repro.obs.registry import timed
        with timed("Cathy.Fit"):
            pass
        """
        assert hits(SOLVER_PATH, src, "RL005")

    def test_flags_bad_fstring_fragment(self):
        src = """
        from repro.obs import timed
        with timed(f"Parallel-{label}"):
            pass
        """
        assert hits(SOLVER_PATH, src, "RL005")

    def test_dotted_names_pass(self):
        src = """
        from repro.obs import inc, set_gauge, timed
        inc("cathy.em.iterations")
        set_gauge("parallel.workers", 4)
        with timed("strod.tensor_decomposition"):
            pass
        """
        assert not hits(SOLVER_PATH, src, "RL005")

    def test_dotted_fstring_passes(self):
        src = """
        from repro.obs import timed
        with timed(f"parallel.{label}"):
            pass
        """
        assert not hits(SOLVER_PATH, src, "RL005")

    def test_unrelated_inc_function_ignored(self):
        src = """
        from collections import Counter
        def inc(name):
            pass
        inc("whatever")
        """
        assert not hits(SOLVER_PATH, src, "RL005")


# --------------------------------------------------------------------- RL006
class TestCheckpointsCarryFingerprint:
    def test_flags_checkpoint_in_without_config(self):
        src = """
        from repro.resilience import checkpoint_in
        writer = checkpoint_in(directory, "em", "cathy.em")
        """
        assert hits(SOLVER_PATH, src, "RL006")

    def test_flags_writer_without_config(self):
        src = """
        from repro.resilience.checkpoint import CheckpointWriter
        writer = CheckpointWriter(path, "cathy.em")
        """
        assert hits(SOLVER_PATH, src, "RL006")

    def test_config_keyword_passes(self):
        src = """
        from repro.resilience import checkpoint_in
        writer = checkpoint_in(directory, "em", "cathy.em",
                               config={"seed": 0})
        """
        assert not hits(SOLVER_PATH, src, "RL006")

    def test_config_positional_passes(self):
        src = """
        from repro.resilience import checkpoint_in
        writer = checkpoint_in(directory, "em", "cathy.em", {"seed": 0})
        """
        assert not hits(SOLVER_PATH, src, "RL006")

    def test_relative_import_resolves(self):
        src = """
        from ..resilience import checkpoint_in
        writer = checkpoint_in(directory, "em", "cathy.em")
        """
        assert hits("src/repro/cathy/builder2.py", src, "RL006")

    def test_allowlists_resilience_package(self):
        src = """
        from repro.resilience.checkpoint import CheckpointWriter
        writer = CheckpointWriter(path, "x")
        """
        assert not hits("src/repro/resilience/helper.py", src, "RL006")


# -------------------------------------------------------------------- pragmas
class TestPragmas:
    def test_trailing_pragma_suppresses(self):
        src = """
        f = open("x", "w")  # repro: noqa-RL003  fixture needs a raw write
        """
        violations, suppressed, pragmas = lint_file(
            SOLVER_PATH, textwrap.dedent(src))
        assert not violations
        assert [v.rule for v in suppressed] == ["RL003"]
        assert pragmas[0].used == 1
        assert pragmas[0].reason.startswith("fixture needs")

    def test_standalone_pragma_anchors_to_next_code_line(self):
        src = """
        # repro: noqa-RL003  the statement below is too long to inline
        # a trailing comment, so the pragma stands on its own line
        f = open("some/very/long/path/to/an/artifact.json", mode="w")
        """
        violations, suppressed, _ = lint_file(
            SOLVER_PATH, textwrap.dedent(src))
        assert not violations
        assert [v.rule for v in suppressed] == ["RL003"]

    def test_pragma_only_covers_its_rule(self):
        src = """
        import time
        f = open("x", "w")  # repro: noqa-RL002  wrong rule id for this
        """
        violations, _, _ = lint_file(SOLVER_PATH, textwrap.dedent(src))
        rules = [v.rule for v in violations]
        assert "RL003" in rules      # not suppressed by the RL002 pragma
        assert "RL000" in rules      # and the pragma suppressed nothing

    def test_pragma_without_reason_does_not_suppress(self):
        src = """
        f = open("x", "w")  # repro: noqa-RL003
        """
        violations, _, _ = lint_file(SOLVER_PATH, textwrap.dedent(src))
        rules = sorted(v.rule for v in violations)
        assert rules == ["RL000", "RL003"]

    def test_unknown_rule_id_reported(self):
        src = """
        x = 1  # repro: noqa-RL999  no such rule
        """
        violations, _, _ = lint_file(SOLVER_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL000"]

    def test_unused_pragma_reported(self):
        src = """
        x = 1  # repro: noqa-RL003  nothing to suppress here
        """
        violations, _, _ = lint_file(SOLVER_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL000"]

    def test_comma_separated_ids_suppress_both(self):
        src = """
        import time
        # repro: noqa-RL002,RL003  fixture exercising a double hit
        json_handle = open("x.json", str("w")) or time.time()
        """
        src = """
        import json
        # repro: noqa-RL002,RL003  wall-clocked raw write in one call
        json.dump(obj, handle) if use_json else __import__("time").time()
        """
        violations, suppressed, _ = lint_file(
            SOLVER_PATH, textwrap.dedent(src))
        assert not [v for v in violations if v.rule == "RL003"]

    def test_docstring_mentioning_pragma_is_not_a_pragma(self):
        src = '''
        def helper():
            """Suppress with ``# repro: noqa-RL003  reason`` inline."""
            return 1
        '''
        violations, _, pragmas = lint_file(SOLVER_PATH, textwrap.dedent(src))
        assert not pragmas
        assert not violations

    def test_pragma_regex_requires_reason_grouping(self):
        match = PRAGMA_RE.search("# repro: noqa-RL001,RL005  because")
        assert match.group(1).replace(" ", "") == "RL001,RL005"
        assert match.group(2) == "because"

    def test_pragma_on_opening_line_covers_whole_statement(self):
        # Regression (PR 10): the violation anchors at the call node's
        # first line, but a multi-line call may carry its pragma on the
        # opening line while the flagged argument sits lines below.
        src = """
        import json
        json.dump(  # repro: noqa-RL003  fixture: multi-line raw write
            obj,
            handle,
            indent=2,
        )
        """
        violations, suppressed, pragmas = lint_file(
            SOLVER_PATH, textwrap.dedent(src))
        assert not violations
        assert [v.rule for v in suppressed] == ["RL003"]
        assert pragmas[0].used == 1

    def test_pragma_on_closing_line_covers_whole_statement(self):
        src = """
        result = open(
            "artifact.bin",
            mode="wb",
        )  # repro: noqa-RL003  fixture: pragma trails the closing paren
        """
        violations, suppressed, _ = lint_file(
            SOLVER_PATH, textwrap.dedent(src))
        assert not violations
        assert [v.rule for v in suppressed] == ["RL003"]

    def test_pragma_on_compound_header_does_not_silence_body(self):
        # A `with` header pragma covers the header extent only — it
        # must not suppress independent violations inside the block.
        src = """
        import time
        with open("out.txt",
                  "w"):  # repro: noqa-RL003  fixture: header-only cover
            stamp = time.time()
        """
        violations, _, _ = lint_file(SOLVER_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL002"]

    def test_program_rule_pragma_not_flagged_unknown_per_file(self):
        # A pragma naming a whole-program rule (RL101 etc.) cannot be
        # validated by the per-file engine: not unknown, not unused.
        src = """
        import repro.serve  # repro: noqa-RL101  fixture: layering waiver
        """
        violations, _, _ = lint_file(SOLVER_PATH, textwrap.dedent(src))
        assert not violations


# ------------------------------------------------------------------- reports
class TestReport:
    def _seed_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "cathy"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(textwrap.dedent("""
            import numpy as np
            np.random.seed(7)
            stamp = __import__("time").time()
        """))
        return tmp_path

    def test_document_shape_is_stable(self, tmp_path):
        root = self._seed_tree(tmp_path)
        result = lint_paths(["src"], root=str(root))
        doc = to_document(result)
        assert doc["schema"] == REPORT_SCHEMA == "repro.lint/report/v1"
        for key in ("repro_version", "root", "paths", "files_scanned",
                    "clean", "rules", "violations", "suppressions",
                    "summary"):
            assert key in doc, key
        assert doc["clean"] is False
        assert set(doc["rules"]) >= {r.id for r in RULES}
        violation = doc["violations"][0]
        assert set(violation) == {"rule", "file", "line", "col", "message"}
        assert doc["summary"]["violations"] == len(doc["violations"])
        # The document round-trips through JSON unchanged.
        assert json.loads(render_json(result)) == doc

    def test_violations_carry_rule_ids_and_locations(self, tmp_path):
        root = self._seed_tree(tmp_path)
        result = lint_paths(["src"], root=str(root))
        rules = {v.rule for v in result.violations}
        assert "RL001" in rules
        v = next(v for v in result.violations if v.rule == "RL001")
        assert v.path == "src/repro/cathy/bad.py"
        assert v.line == 3
        assert v.location().count(":") == 2

    def test_catalogue_covers_all_per_file_rules(self):
        assert sorted(rule_catalogue()) == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL201", "RL202", "RL203", "RL301"]


# ----------------------------------------------------------------------- CLI
class TestCli:
    def _seed_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "strod"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            'f = open("model.bin", "wb")\n')
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_ok.py").write_text("x = 1\n")
        return tmp_path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("value = 1\n")
        code = lint_main(["src", "--root", str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_with_locations_on_seeded_violation(self, tmp_path,
                                                         capsys):
        root = self._seed_tree(tmp_path)
        code = lint_main(["src", "tests", "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL003" in out
        assert "src/repro/strod/bad.py:1:" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = lint_main(["nonexistent", "--root", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_json_format_parses(self, tmp_path, capsys):
        root = self._seed_tree(tmp_path)
        code = lint_main(["src", "--format", "json", "--root", str(root)])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint/report/v1"
        assert doc["rules"]["RL003"]["violations"] == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005",
                        "RL006", "RL101", "RL102", "RL201", "RL202",
                        "RL203", "RL301", "RL302", "RL401", "RL402",
                        "RL000"):
            assert rule_id in out

    def test_repro_lint_subcommand(self, tmp_path):
        root = self._seed_tree(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src",
             "--root", str(root)],
            capture_output=True, text=True, env=env, cwd=str(root))
        assert proc.returncode == 1, proc.stderr
        assert "RL003" in proc.stdout


# ---------------------------------------------------------------- self-check
class TestSelfCheck:
    def test_repository_lints_clean(self):
        result = lint_paths(["src", "tests"], root=REPO_ROOT)
        assert result.clean, "\n".join(
            f"{v.location()} {v.rule} {v.message}"
            for v in result.violations)
        assert len(result.files) > 100

    def test_pragma_count_does_not_grow(self):
        result = lint_paths(["src", "tests"], root=REPO_ROOT)
        pragmas = [(p.path, p.line) for p in result.pragmas]
        assert len(pragmas) <= SHIPPED_PRAGMA_BASELINE, (
            f"suppression pragmas grew past the shipped baseline of "
            f"{SHIPPED_PRAGMA_BASELINE}: {pragmas}; fix the violation "
            f"instead, or raise the baseline in the same review that "
            f"justifies the new pragma")

    def test_every_shipped_pragma_is_used_and_reasoned(self):
        result = lint_paths(["src", "tests"], root=REPO_ROOT)
        for pragma in result.pragmas:
            assert pragma.used >= 1, pragma
            assert len(pragma.reason) >= 10, pragma

    def test_whole_program_pass_is_clean(self):
        # The PR 10 analyzer: per-file rules plus layering, cycles,
        # schema-registry coverage, and obs-namespace consistency must
        # all hold on the shipped tree.
        result = lint_project(["src", "tests"], root=REPO_ROOT)
        assert result.whole_program
        assert result.clean, "\n".join(
            f"{v.location()} {v.rule} {v.message}"
            for v in result.violations)
        assert len(result.modules) > 100
        assert result.import_edges > 500

    def test_exact_suppression_list_is_pinned(self):
        # The shipped suppression inventory, in full.  A new pragma is
        # a reviewed decision: it must be added here with the same
        # justification discipline as raising SHIPPED_PRAGMA_BASELINE.
        result = lint_project(["src", "tests"], root=REPO_ROOT)
        inventory = sorted((p.path, tuple(p.rule_ids))
                           for p in result.pragmas)
        assert inventory == [
            ("src/repro/cli.py", ("RL004",)),
            ("src/repro/obs/spans.py", ("RL003",)),
            ("src/repro/obs/tracer.py", ("RL003",)),
            ("src/repro/resilience/checkpoint.py", ("RL003",)),
        ], inventory
        for pragma in result.pragmas:
            assert pragma.used >= 1, pragma
