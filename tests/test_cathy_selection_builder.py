"""Tests for model selection and the recursive hierarchy builder."""

import pytest

from repro.cathy import (BuilderConfig, HierarchyBuilder, select_num_topics,
                         split_network)
from repro.corpus import Corpus
from repro.errors import ConfigurationError
from repro.network import build_collapsed_network


@pytest.fixture
def three_topic_network():
    texts = (["red green blue"] * 10 + ["cat dog bird"] * 10
             + ["sun moon star"] * 10)
    entities = ([{"venue": ["A"]}] * 10 + [{"venue": ["B"]}] * 10
                + [{"venue": ["C"]}] * 10)
    corpus = Corpus.from_texts(texts, entities=entities)
    return build_collapsed_network(corpus)


class TestSplitNetwork:
    def test_partition_is_complete(self, three_topic_network):
        train, held_out = split_network(three_topic_network, 0.3, seed=0)
        total = train.total_weight() + sum(w for *_, w in held_out)
        assert total == pytest.approx(three_topic_network.total_weight())

    def test_train_keeps_all_nodes(self, three_topic_network):
        train, _ = split_network(three_topic_network, 0.3, seed=0)
        for node_type in three_topic_network.node_types():
            assert train.node_count(node_type) == \
                three_topic_network.node_count(node_type)

    def test_invalid_fraction(self, three_topic_network):
        with pytest.raises(ConfigurationError):
            split_network(three_topic_network, 1.5)


class TestSelectNumTopics:
    def test_bic_prefers_true_k(self, three_topic_network):
        best, scores = select_num_topics(
            three_topic_network, candidates=[2, 3, 5], method="bic",
            seed=0, max_iter=60)
        assert set(scores) == {2, 3, 5}
        assert best == 3

    def test_cv_returns_scores_for_all_candidates(self, three_topic_network):
        best, scores = select_num_topics(
            three_topic_network, candidates=[2, 3], method="cv",
            seed=0, max_iter=40)
        assert set(scores) == {2, 3}
        assert best in (2, 3)

    def test_unknown_method(self, three_topic_network):
        with pytest.raises(ConfigurationError):
            select_num_topics(three_topic_network, method="aic")

    def test_empty_candidates(self, three_topic_network):
        with pytest.raises(ConfigurationError):
            select_num_topics(three_topic_network, candidates=[])


class TestHierarchyBuilder:
    def test_builds_requested_shape(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=[4, 2], max_depth=2, max_iter=40),
            seed=0)
        hierarchy = builder.build(dblp_network)
        assert len(hierarchy.root.children) == 4
        assert hierarchy.height == 2
        for child in hierarchy.root.children:
            assert len(child.children) in (0, 2)

    def test_children_sorted_by_rho(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=4, max_depth=1, max_iter=40), seed=0)
        hierarchy = builder.build(dblp_network)
        rhos = [c.rho for c in hierarchy.root.children]
        assert rhos == sorted(rhos, reverse=True)

    def test_topics_carry_phi_and_networks(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=3, max_depth=1, max_iter=40), seed=0)
        hierarchy = builder.build(dblp_network)
        for child in hierarchy.root.children:
            assert "term" in child.phi
            assert child.network is not None

    def test_root_phi_from_degrees(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=2, max_depth=1, max_iter=20), seed=0)
        hierarchy = builder.build(dblp_network)
        root_phi = hierarchy.root.phi["term"]
        assert sum(root_phi.values()) == pytest.approx(1.0, abs=1e-6)

    def test_expand_topic_regrows_subtree(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=[3, 2], max_depth=2, max_iter=30),
            seed=0)
        hierarchy = builder.build(dblp_network)
        target = hierarchy.root.children[0]
        old_children = list(target.children)
        builder.expand_topic(hierarchy, target)
        assert len(target.children) == len(old_children)
        assert target.children is not old_children

    def test_expand_topic_requires_network(self, dblp_network):
        builder = HierarchyBuilder(seed=0)
        hierarchy = builder.build(dblp_network)
        orphan = hierarchy.root.children[0]
        orphan.network = None
        with pytest.raises(ConfigurationError):
            builder.expand_topic(hierarchy, orphan)

    def test_min_network_weight_stops_recursion(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=3, max_depth=3, max_iter=20,
                          min_network_weight=10 ** 9), seed=0)
        hierarchy = builder.build(dblp_network)
        assert hierarchy.height == 0


class TestExpandTopicOverride:
    def test_num_children_override(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=[3, 2], max_depth=2, max_iter=30),
            seed=0)
        hierarchy = builder.build(dblp_network)
        target = hierarchy.root.children[0]
        builder.expand_topic(hierarchy, target, num_children=4)
        assert len(target.children) == 4
        # Config restored afterwards.
        assert builder.config.num_children == [3, 2]
        assert builder.config.max_depth == 2

    def test_override_does_not_recurse(self, dblp_network):
        builder = HierarchyBuilder(
            BuilderConfig(num_children=[3, 2, 2], max_depth=3,
                          max_iter=30), seed=0)
        hierarchy = builder.build(dblp_network)
        target = hierarchy.root.children[0]
        builder.expand_topic(hierarchy, target, num_children=2)
        for child in target.children:
            assert child.children == []
