"""Tests for frequent phrase mining (Algorithm 1)."""

import pytest

from repro.corpus import Corpus
from repro.errors import ConfigurationError
from repro.phrases import (mine_frequent_phrases,
                           mine_frequent_phrases_from_chunks)


def ids(corpus, words):
    return tuple(corpus.vocabulary.id_of(w) for w in words.split())


class TestMining:
    def test_counts_exact(self):
        corpus = Corpus.from_texts(["alpha beta gamma"] * 5
                                   + ["alpha beta delta"] * 3)
        counts = mine_frequent_phrases(corpus, min_support=3)
        assert counts.frequency(ids(corpus, "alpha beta")) == 8
        assert counts.frequency(ids(corpus, "alpha beta gamma")) == 5
        assert counts.frequency(ids(corpus, "alpha beta delta")) == 3
        assert counts.frequency(ids(corpus, "beta gamma")) == 5

    def test_min_support_filters(self):
        corpus = Corpus.from_texts(["alpha beta"] * 4 + ["gamma delta"] * 2)
        counts = mine_frequent_phrases(corpus, min_support=3)
        assert ids(corpus, "alpha beta") in counts
        assert ids(corpus, "gamma delta") not in counts

    def test_downward_closure(self, dblp_small):
        """Every frequent phrase's sub-phrases are frequent too."""
        counts = mine_frequent_phrases(dblp_small.corpus, min_support=5)
        for phrase, count in counts.counts.items():
            if len(phrase) < 2:
                continue
            for sub in (phrase[:-1], phrase[1:]):
                assert sub in counts
                assert counts.frequency(sub) >= count

    def test_phrases_never_cross_punctuation(self):
        corpus = Corpus.from_texts(["alpha beta, gamma delta"] * 5)
        counts = mine_frequent_phrases(corpus, min_support=3)
        assert counts.frequency(ids(corpus, "beta gamma")) == 0
        assert counts.frequency(ids(corpus, "alpha beta")) == 5

    def test_max_length_cap(self):
        corpus = Corpus.from_texts(["a1 a2 a3 a4 a5"] * 6)
        counts = mine_frequent_phrases(corpus, min_support=3, max_length=3)
        assert max(len(p) for p in counts.counts) == 3

    def test_invalid_support(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            mine_frequent_phrases(tiny_corpus, min_support=0)

    def test_corpus_constants_recorded(self, tiny_corpus):
        counts = mine_frequent_phrases(tiny_corpus, min_support=2)
        assert counts.num_documents == len(tiny_corpus)
        assert counts.num_tokens == tiny_corpus.num_tokens

    def test_overlapping_instances_counted(self):
        # "x x x" has two instances of the bigram (x, x).
        chunks = [[0, 0, 0]] * 4
        counts = mine_frequent_phrases_from_chunks(chunks, min_support=3)
        assert counts.frequency((0, 0)) == 8

    def test_phrases_accessor_filters_lengths(self, tiny_corpus):
        counts = mine_frequent_phrases(tiny_corpus, min_support=2)
        assert all(len(p) >= 2 for p in counts.phrases(min_length=2))
        assert all(len(p) == 1 for p in counts.phrases(max_length=1))


class TestKnownCollocations:
    def test_planted_phrases_found(self, dblp_small):
        counts = mine_frequent_phrases(dblp_small.corpus, min_support=5)
        vocab = dblp_small.corpus.vocabulary
        truth = dblp_small.ground_truth
        found = 0
        total = 0
        for path, spec in truth.paths.items():
            if spec.children:
                continue
            for phrase in truth.normalized_phrases(path):
                words = phrase.split()
                if len(words) < 2:
                    continue
                total += 1
                if tuple(vocab.id_of(w) for w in words) in counts:
                    found += 1
        assert total > 0
        assert found / total > 0.9
