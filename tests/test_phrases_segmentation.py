"""Tests for significance scoring and segmentation (Algorithm 2)."""

import pytest

from repro.corpus import Corpus
from repro.phrases import (merge_significance, mine_frequent_phrases,
                           partition_is_valid, phrase_significance,
                           segment_chunk, segment_corpus, segment_document)


@pytest.fixture
def collocation_corpus():
    """'support vector machines' is a true collocation; 'noise' words are
    independent fillers."""
    tails = ["classification", "regression", "ranking", "clustering"]
    texts = [f"support vector machines {tail}" for tail in tails * 3] + [
        "support research", "vector field", "machines industry",
        "classification taxonomy", "support question", "vector art",
        "machines factory", "classification biology",
    ]
    return Corpus.from_texts(texts)


class TestSignificance:
    def test_true_collocation_significant(self, collocation_corpus):
        corpus = collocation_corpus
        counts = mine_frequent_phrases(corpus, min_support=3)
        sv = merge_significance(
            counts,
            (corpus.vocabulary.id_of("support"),),
            (corpus.vocabulary.id_of("vector"),))
        assert sv > 2.0

    def test_unfrequent_merge_is_never(self, collocation_corpus):
        corpus = collocation_corpus
        counts = mine_frequent_phrases(corpus, min_support=3)
        score = merge_significance(
            counts,
            (corpus.vocabulary.id_of("support"),),
            (corpus.vocabulary.id_of("research"),))
        assert score == float("-inf")

    def test_unigram_significance_is_one(self, collocation_corpus):
        counts = mine_frequent_phrases(collocation_corpus, min_support=3)
        assert phrase_significance(counts, (0,)) == 1.0

    def test_phrase_significance_uses_best_split(self, collocation_corpus):
        corpus = collocation_corpus
        counts = mine_frequent_phrases(corpus, min_support=3)
        trigram = tuple(corpus.vocabulary.id_of(w)
                        for w in ["support", "vector", "machines"])
        assert phrase_significance(counts, trigram) > 2.0


class TestSegmentation:
    def test_collocation_merged(self, collocation_corpus):
        corpus = collocation_corpus
        counts = mine_frequent_phrases(corpus, min_support=3)
        partition = segment_document(corpus[0], counts, alpha=2.0)
        phrases = [tuple(corpus.vocabulary.decode(list(p)))
                   for p in partition]
        assert ("support", "vector", "machines") in phrases

    def test_partition_property(self, collocation_corpus):
        corpus = collocation_corpus
        counts = mine_frequent_phrases(corpus, min_support=3)
        for doc in corpus:
            partition = segment_document(doc, counts, alpha=2.0)
            assert partition_is_valid(doc, partition)

    def test_partition_property_on_dblp(self, dblp_small):
        counts = mine_frequent_phrases(dblp_small.corpus, min_support=5)
        partitions = segment_corpus(dblp_small.corpus, counts, alpha=2.0)
        for doc, partition in zip(dblp_small.corpus, partitions):
            assert partition_is_valid(doc, partition)

    def test_high_threshold_keeps_unigrams(self, collocation_corpus):
        corpus = collocation_corpus
        counts = mine_frequent_phrases(corpus, min_support=3)
        partition = segment_chunk(corpus[0].chunks[0], counts, alpha=10**9)
        assert all(len(p) == 1 for p in partition)

    def test_empty_and_single_chunks(self, collocation_corpus):
        counts = mine_frequent_phrases(collocation_corpus, min_support=3)
        assert segment_chunk([], counts) == []
        assert segment_chunk([0], counts) == [(0,)]

    def test_planted_phrases_segmented(self, dblp_small):
        """Most planted multiword phrases survive segmentation intact."""
        corpus = dblp_small.corpus
        counts = mine_frequent_phrases(corpus, min_support=5)
        partitions = segment_corpus(corpus, counts, alpha=2.0)
        vocab = corpus.vocabulary
        truth = dblp_small.ground_truth
        planted = set()
        for path, spec in truth.paths.items():
            for phrase in truth.normalized_phrases(path):
                words = phrase.split()
                if len(words) >= 2:
                    planted.add(tuple(vocab.id_of(w) for w in words))
        segmented = {p for partition in partitions for p in partition
                     if len(p) >= 2}
        recovered = sum(1 for p in planted if p in segmented)
        assert recovered / max(len(planted), 1) > 0.8
