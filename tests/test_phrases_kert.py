"""Tests for KERT ranking (Section 4.2)."""

import numpy as np
import pytest

from repro.corpus import Corpus
from repro.errors import ConfigurationError
from repro.phrases import (KERT, KERTConfig, FlatTopicModel,
                           completeness_scores, mine_frequent_phrases,
                           phrase_topic_posterior, topical_frequencies)


@pytest.fixture
def two_topic_setup():
    """Two clean topics with one signature collocation each."""
    texts = (["support vector machines learning"] * 10
             + ["query processing database queries"] * 10)
    corpus = Corpus.from_texts(texts)
    vocab = corpus.vocabulary
    k, v = 2, len(vocab)
    phi = np.full((k, v), 1e-6)
    for word in ["support", "vector", "machines", "learning"]:
        phi[0, vocab.id_of(word)] = 0.25
    for word in ["query", "processing", "database", "queries"]:
        phi[1, vocab.id_of(word)] = 0.25
    phi /= phi.sum(axis=1, keepdims=True)
    model = FlatTopicModel(rho=np.array([0.5, 0.5]), phi=phi)
    counts = mine_frequent_phrases(corpus, min_support=3)
    return corpus, model, counts


class TestTopicalFrequency:
    def test_posterior_peaks_on_generating_topic(self, two_topic_setup):
        corpus, model, _ = two_topic_setup
        phrase = tuple(corpus.vocabulary.id_of(w)
                       for w in ["support", "vector"])
        posterior = phrase_topic_posterior(phrase, model)
        assert posterior[0] > 0.99

    def test_frequencies_sum_to_total(self, two_topic_setup):
        corpus, model, counts = two_topic_setup
        freqs = topical_frequencies(counts, model)
        for phrase, vector in freqs.items():
            assert vector.sum() == pytest.approx(
                counts.frequency(phrase), rel=1e-6)


class TestCompleteness:
    def test_incomplete_subphrase_detected(self, two_topic_setup):
        corpus, _, counts = two_topic_setup
        scores = completeness_scores(counts)
        vector_machines = tuple(corpus.vocabulary.id_of(w)
                                for w in ["vector", "machines"])
        svm = tuple(corpus.vocabulary.id_of(w)
                    for w in ["support", "vector", "machines"])
        # "vector machines" always extends to the trigram: incomplete.
        assert scores[vector_machines] == pytest.approx(0.0)
        # The 4-gram has no extension at all: fully complete.
        full = svm + (corpus.vocabulary.id_of("learning"),)
        assert scores[full] == pytest.approx(1.0)


class TestKERTRanking:
    def test_signature_phrases_ranked_first(self, two_topic_setup):
        corpus, model, counts = two_topic_setup
        kert = KERT(KERTConfig(min_support=3))
        ranked = kert.rank_strings(corpus, model, counts=counts, top_k=3)
        tops = {ranked[0][0][0], ranked[1][0][0]}
        assert "support vector machines learning" in tops
        assert "query processing database queries" in tops

    def test_incomplete_phrases_filtered(self, two_topic_setup):
        corpus, model, counts = two_topic_setup
        kert = KERT(KERTConfig(min_support=3, gamma=0.5))
        ranked = kert.rank_strings(corpus, model, counts=counts, top_k=20)
        for topic in ranked:
            phrases = [p for p, _ in topic]
            assert "vector machines" not in phrases

    def test_no_completeness_keeps_fragments(self, two_topic_setup):
        corpus, model, counts = two_topic_setup
        kert = KERT(KERTConfig(min_support=3, use_completeness=False))
        ranked = kert.rank_strings(corpus, model, counts=counts, top_k=50)
        all_phrases = {p for topic in ranked for p, _ in topic}
        assert "vector machines" in all_phrases

    def test_purity_separates_topics(self, dblp_small):
        """With purity on, the two topics' top phrases don't overlap."""
        from repro.baselines import LDAGibbs
        corpus = dblp_small.corpus
        lda = LDAGibbs(num_topics=6, iterations=15, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary))
        kert = KERT(KERTConfig(min_support=5))
        ranked = kert.rank_strings(corpus, lda.to_flat(), top_k=5)
        top_sets = [set(p for p, _ in topic) for topic in ranked]
        overlaps = sum(len(a & b) for i, a in enumerate(top_sets)
                       for b in top_sets[i + 1:])
        assert overlaps <= 3

    def test_scores_positive_and_sorted(self, two_topic_setup):
        corpus, model, counts = two_topic_setup
        results = KERT(KERTConfig(min_support=3)).rank(corpus, model,
                                                       counts=counts)
        for topic in results:
            scores = [s for _, s in topic.ranked]
            assert all(s > 0 for s in scores)
            assert scores == sorted(scores, reverse=True)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            KERTConfig(gamma=2.0)
        with pytest.raises(ConfigurationError):
            KERTConfig(omega=-0.1)

    def test_max_phrase_length_one_gives_unigrams(self, two_topic_setup):
        corpus, model, counts = two_topic_setup
        kert = KERT(KERTConfig(min_support=3, max_phrase_length=1))
        ranked = kert.rank_strings(corpus, model, top_k=10)
        assert all(" " not in p for topic in ranked for p, _ in topic)
