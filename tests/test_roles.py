"""Tests for entity topical role analysis (Chapter 5)."""

import pytest

from repro.core import LatentEntityMiner, MinerConfig
from repro.errors import ConfigurationError
from repro.roles import RoleAnalyzer


@pytest.fixture(scope="module")
def mined():
    from repro.datasets import DBLPConfig, generate_dblp
    dataset = generate_dblp(DBLPConfig(max_authors=100), seed=3)
    miner = LatentEntityMiner(
        MinerConfig(num_children=[6, 3], max_depth=2), seed=0)
    return dataset, miner.fit(dataset.corpus)


class TestDocumentDistribution:
    def test_root_mass_is_one(self, mined):
        _, result = mined
        for doc_freq in result.roles.document_topic_frequencies():
            assert doc_freq.get("o") == pytest.approx(1.0)

    def test_child_masses_bounded_by_parent(self, mined):
        _, result = mined
        hierarchy = result.hierarchy
        for doc_freq in result.roles.document_topic_frequencies()[:200]:
            for topic in hierarchy.topics():
                if not topic.children:
                    continue
                parent_mass = doc_freq.get(topic.notation, 0.0)
                child_mass = sum(doc_freq.get(c.notation, 0.0)
                                 for c in topic.children)
                assert child_mass <= parent_mass + 1e-9


class TestEntityDistribution:
    def test_distribution_sums_to_one_or_zero(self, mined):
        _, result = mined
        freqs = result.roles.entity_topic_frequencies("author")
        name = next(iter(freqs))
        dist = result.roles.entity_distribution("author", name)
        assert sum(dist.values()) in (pytest.approx(1.0), 0.0)

    def test_root_frequency_counts_documents(self, mined):
        dataset, result = mined
        freqs = result.roles.entity_topic_frequencies("author")
        doc_counts = {}
        for doc in dataset.corpus:
            for author in doc.entity_list("author"):
                doc_counts[author] = doc_counts.get(author, 0) + 1
        for name, bucket in list(freqs.items())[:20]:
            assert bucket.get("o", 0.0) == pytest.approx(doc_counts[name])

    def test_prolific_author_concentrates_in_home_topic(self, mined):
        dataset, result = mined
        truth = dataset.ground_truth
        counts = {}
        for doc in dataset.corpus:
            for author in doc.entity_list("author"):
                counts[author] = counts.get(author, 0) + 1
        top_author = max(counts, key=counts.get)
        dist = result.roles.entity_distribution("author", top_author)
        assert max(dist.values()) > 0.4


class TestEntityPhrases:
    def test_combined_ranking_returns_topic_phrases(self, mined):
        _, result = mined
        topic = result.hierarchy.root.children[0].notation
        ranked = result.roles.entity_phrases(
            topic, "author",
            [result.hierarchy.root.children[0]
             .entity_ranks["author"][0][0]],
            top_k=5)
        assert len(ranked) == 5
        assert all(isinstance(p, str) for p, _ in ranked)

    def test_alpha_validation(self, mined):
        _, result = mined
        with pytest.raises(ConfigurationError):
            result.roles.entity_phrases("o/1", "author", ["x"], alpha=1.5)

    def test_alpha_zero_matches_generic_ranking_order(self, mined):
        _, result = mined
        topic = result.hierarchy.root.children[0]
        generic = [p for p, _ in topic.phrases[:5]]
        ranked = result.roles.entity_phrases(topic.notation, "author",
                                             ["nonexistent-author"],
                                             alpha=0.0, top_k=5)
        assert [p for p, _ in ranked] == generic


class TestEntityRanking:
    def test_top_authors_belong_to_topic(self, mined):
        dataset, result = mined
        truth = dataset.ground_truth
        hits = total = 0
        for child in result.hierarchy.root.children:
            ranked = result.roles.rank_entities(child.notation, "author",
                                                top_k=5)
            # Determine the topic's dominant true area via its venues.
            venues = child.top_entities("venue", 2)
            if not venues:
                continue
            area = truth.topic_of_entity("venue", venues[0])
            for name, _ in ranked:
                true_leaf = truth.topic_of_entity("author", name)
                if true_leaf is None:
                    continue
                total += 1
                if true_leaf[:1] == area:
                    hits += 1
        assert total > 0
        assert hits / total > 0.6

    def test_purity_reduces_cross_topic_overlap(self, mined):
        _, result = mined
        children = result.hierarchy.root.children
        pure_sets = [set(n for n, _ in
                         result.roles.rank_entities(c.notation, "author",
                                                    top_k=5))
                     for c in children]
        cov_sets = [set(n for n, _ in
                        result.roles.rank_entities(c.notation, "author",
                                                   top_k=5, purity=False))
                    for c in children]
        pure_overlap = sum(len(a & b) for i, a in enumerate(pure_sets)
                           for b in pure_sets[i + 1:])
        cov_overlap = sum(len(a & b) for i, a in enumerate(cov_sets)
                          for b in cov_sets[i + 1:])
        assert pure_overlap <= cov_overlap

    def test_scores_sorted(self, mined):
        _, result = mined
        ranked = result.roles.rank_entities("o/1", "venue", top_k=10)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
