"""Tests for STROD moment-based inference (Chapter 7)."""

import numpy as np
import pytest

from repro.datasets import generate_planted_lda
from repro.errors import ConfigurationError, NotFittedError
from repro.eval import recovery_error
from repro.strod import (STROD, compute_whitener, first_moment,
                         power_iteration, reconstruction_error,
                         robust_tensor_decomposition, second_moment,
                         tensor_apply, tensor_value,
                         whitened_third_moment, word_count_rows)


class TestMoments:
    def test_first_moment_is_distribution(self, planted_small):
        rows = word_count_rows(planted_small.docs, planted_small.vocab_size)
        m1 = first_moment(rows, planted_small.vocab_size)
        assert m1.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(m1 >= 0)

    def test_second_moment_symmetric(self, planted_small):
        rows = word_count_rows(planted_small.docs, planted_small.vocab_size)
        m2 = second_moment(rows, planted_small.vocab_size,
                           alpha0=float(planted_small.alpha.sum()))
        assert np.allclose(m2, m2.T)

    def test_second_moment_converges_to_population(self):
        """Empirical M2 approaches sum_z pi_z mu mu^T for large samples."""
        planted = generate_planted_lda(num_docs=4000, num_topics=3,
                                       vocab_size=30, doc_length=60,
                                       seed=5)
        alpha0 = float(planted.alpha.sum())
        rows = word_count_rows(planted.docs, planted.vocab_size)
        m2 = second_moment(rows, planted.vocab_size, alpha0)
        weights = planted.alpha / (alpha0 * (alpha0 + 1))
        population = (planted.phi.T * weights) @ planted.phi
        assert np.abs(m2 - population).max() < 5e-4

    def test_short_documents_dropped(self):
        rows = word_count_rows([[1, 2], [1, 2, 3], [5]], vocab_size=10)
        assert len(rows) == 1

    def test_whitener_orthogonalizes(self, planted_small):
        rows = word_count_rows(planted_small.docs, planted_small.vocab_size)
        m2 = second_moment(rows, planted_small.vocab_size,
                           alpha0=float(planted_small.alpha.sum()))
        whitener, unwhitener = compute_whitener(m2, 4)
        gram = whitener.T @ m2 @ whitener
        assert np.allclose(gram, np.eye(4), atol=1e-6)
        assert np.allclose(whitener.T @ unwhitener, np.eye(4), atol=1e-6)

    def test_whitened_tensor_shape_and_symmetry(self, planted_small):
        rows = word_count_rows(planted_small.docs, planted_small.vocab_size)
        alpha0 = float(planted_small.alpha.sum())
        m1 = first_moment(rows, planted_small.vocab_size)
        m2 = second_moment(rows, planted_small.vocab_size, alpha0)
        whitener, _ = compute_whitener(m2, 4)
        tensor = whitened_third_moment(rows, whitener, m1, alpha0)
        assert tensor.shape == (4, 4, 4)
        assert np.allclose(tensor, tensor.transpose(1, 0, 2), atol=1e-8)
        assert np.allclose(tensor, tensor.transpose(2, 1, 0), atol=1e-8)


class TestTensorPower:
    @pytest.fixture
    def synthetic_tensor(self):
        rng = np.random.default_rng(0)
        basis, _ = np.linalg.qr(rng.standard_normal((5, 5)))
        eigenvalues = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        tensor = np.zeros((5, 5, 5))
        for lam, v in zip(eigenvalues, basis.T):
            tensor += lam * np.einsum("i,j,l->ijl", v, v, v)
        return tensor, eigenvalues, basis

    def test_recovers_orthogonal_eigenpairs(self, synthetic_tensor):
        tensor, eigenvalues, basis = synthetic_tensor
        pairs = robust_tensor_decomposition(tensor, 5, num_restarts=8,
                                            num_iterations=40, seed=1)
        recovered = sorted((p.eigenvalue for p in pairs), reverse=True)
        assert np.allclose(recovered, eigenvalues, atol=1e-6)

    def test_residual_near_zero_on_exact_tensor(self, synthetic_tensor):
        tensor, _, _ = synthetic_tensor
        pairs = robust_tensor_decomposition(tensor, 5, num_restarts=8,
                                            num_iterations=40, seed=1)
        assert reconstruction_error(tensor, pairs) < 1e-6

    def test_tensor_apply_matches_value(self, synthetic_tensor):
        tensor, _, basis = synthetic_tensor
        v = basis[:, 0]
        assert tensor_value(tensor, v) == pytest.approx(
            float(v @ tensor_apply(tensor, v)))

    def test_power_iteration_finds_dominant(self, synthetic_tensor):
        tensor, eigenvalues, basis = synthetic_tensor
        vector, value = power_iteration(tensor, basis[:, 0] + 0.01, 50)
        assert value == pytest.approx(eigenvalues[0], abs=1e-6)

    def test_invalid_tensor_rejected(self):
        with pytest.raises(ConfigurationError):
            robust_tensor_decomposition(np.zeros((2, 3, 2)), 2)
        with pytest.raises(ConfigurationError):
            robust_tensor_decomposition(np.zeros((2, 2, 2)), 5)


class TestSTROD:
    def test_recovers_planted_topics(self):
        planted = generate_planted_lda(num_docs=3000, num_topics=5,
                                       vocab_size=150, doc_length=60,
                                       seed=2)
        strod = STROD(num_topics=5, alpha0=float(planted.alpha.sum()),
                      seed=0)
        model = strod.fit(planted.docs, planted.vocab_size)
        assert recovery_error(planted.phi, model.phi) < 0.25

    def test_alpha_recovered_approximately(self):
        planted = generate_planted_lda(num_docs=3000, num_topics=4,
                                       vocab_size=100, doc_length=60,
                                       seed=3)
        strod = STROD(num_topics=4, alpha0=float(planted.alpha.sum()),
                      seed=0)
        model = strod.fit(planted.docs, planted.vocab_size)
        true_sorted = np.sort(planted.alpha)[::-1]
        assert np.abs(model.alpha - true_sorted).max() < 0.15

    def test_phi_rows_are_distributions(self, planted_small):
        strod = STROD(num_topics=4, alpha0=1.0, seed=0)
        model = strod.fit(planted_small.docs, planted_small.vocab_size)
        assert np.allclose(model.phi.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(model.phi >= 0)

    def test_deterministic_given_seed(self, planted_small):
        model_a = STROD(num_topics=4, alpha0=1.0, seed=9).fit(
            planted_small.docs, planted_small.vocab_size)
        model_b = STROD(num_topics=4, alpha0=1.0, seed=9).fit(
            planted_small.docs, planted_small.vocab_size)
        assert np.allclose(model_a.phi, model_b.phi)

    def test_robust_across_seeds(self, planted_small):
        """Different restart seeds give (nearly) the same topics —
        the robustness property of Section 7.4.2."""
        from repro.eval import pairwise_discrepancy
        phis = [STROD(num_topics=4, alpha0=1.0, seed=s).fit(
            planted_small.docs, planted_small.vocab_size).phi
            for s in (0, 1, 2)]
        assert pairwise_discrepancy(phis) < 0.05

    def test_alpha0_learning_picks_reasonable_value(self):
        planted = generate_planted_lda(num_docs=2000, num_topics=3,
                                       vocab_size=60, doc_length=50,
                                       alpha=[0.5, 0.3, 0.2], seed=4)
        strod = STROD(num_topics=3, alpha0=None,
                      alpha0_grid=(0.5, 1.0, 4.0, 16.0), seed=0)
        model = strod.fit(planted.docs, planted.vocab_size)
        assert model.alpha0 in (0.5, 1.0, 4.0, 16.0)
        assert model.alpha0 <= 4.0  # true alpha0 is 1.0

    def test_document_topics_are_distributions(self, planted_small):
        strod = STROD(num_topics=4, alpha0=1.0, seed=0)
        strod.fit(planted_small.docs, planted_small.vocab_size)
        theta = strod.document_topics(planted_small.docs[:50])
        assert np.allclose(theta.sum(axis=1), 1.0, atol=1e-9)

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            STROD(num_topics=1)
        strod = STROD(num_topics=3)
        with pytest.raises(NotFittedError):
            strod.require_model()
        with pytest.raises(ConfigurationError):
            strod.fit([[1, 2, 3]], vocab_size=10)


class TestSTRODHierarchy:
    def test_builds_tree(self, dblp_small):
        from repro.strod import STRODHierarchyBuilder, STRODTreeConfig
        builder = STRODHierarchyBuilder(
            STRODTreeConfig(num_children=4, max_depth=1,
                            min_documents=50), seed=0)
        hierarchy = builder.build(dblp_small.corpus)
        assert len(hierarchy.root.children) == 4
        for child in hierarchy.root.children:
            assert child.phi.get("term")
