"""End-to-end observability: every solver leaves phases and traces."""

import json
import os

import pytest

import repro.obs as obs
from repro.cathy import CathyEM
from repro.core import LatentEntityMiner, MinerConfig
from repro.corpus import Corpus
from repro.network import build_term_network
from repro.phrases import ToPMine, ToPMineConfig
from repro.relations import Candidate, CandidateGraph, ROOT, TPFG
from repro.strod import STROD


#: Pipeline phases the miner facade itself must account for.
MINER_PHASES = ["miner.fit", "miner.network_collapse", "miner.hierarchy",
                "miner.phrase_decoration", "miner.entity_ranking",
                "miner.roles"]


@pytest.fixture(scope="module")
def miner_report(tmp_path_factory):
    """Fit the miner once with observability on; snapshot report + traces.

    The autouse obs reset runs after every test, so everything the tests
    need is captured here, before any teardown can clear it.
    """
    from repro.datasets import DBLPConfig, generate_dblp
    dataset = generate_dblp(DBLPConfig(max_authors=80), seed=3)
    report_path = str(tmp_path_factory.mktemp("obs") / "report.json")
    obs.configure(report_path=report_path)
    try:
        miner = LatentEntityMiner(
            MinerConfig(num_children=3, max_depth=1), seed=0)
        result = miner.fit(dataset.corpus)
        traces = [t.to_dict() for t in obs.get_traces()]
    finally:
        obs.reset()
    return {"result": result, "report": result.report,
            "traces": traces, "report_path": report_path}


class TestMinerRunReport:
    def test_report_attached_to_result(self, miner_report):
        assert miner_report["report"] is not None
        obs.validate_report(miner_report["report"])

    def test_all_pipeline_phases_timed(self, miner_report):
        phases = miner_report["report"]["phases"]
        for name in MINER_PHASES:
            assert name in phases, name
            assert phases[name]["count"] >= 1
            assert phases[name]["total_s"] >= 0.0

    def test_nested_solver_phases_present(self, miner_report):
        phases = miner_report["report"]["phases"]
        for name in ["cathy.hin_em.fit", "topmine.frequent_mining",
                     "phrases.topical_frequency", "phrases.ranking"]:
            assert name in phases, name

    def test_fit_wall_time_dominates(self, miner_report):
        phases = miner_report["report"]["phases"]
        total = phases["miner.fit"]["total_s"]
        for name in MINER_PHASES[1:]:
            assert phases[name]["total_s"] <= total

    def test_convergence_traces_recorded(self, miner_report):
        names = {t["name"] for t in miner_report["traces"]}
        assert "cathy.hin_em" in names
        for t in miner_report["traces"]:
            if t["name"] != "cathy.hin_em":
                continue
            assert t["termination"] in ("converged", "max_iter")
            assert t["num_iterations"] >= 1
            # Link-type weight re-learning between iterations re-scales
            # the objective, so only overall improvement is guaranteed.
            lls = [r["log_likelihood"] for r in t["iterations"]]
            assert lls[-1] >= lls[0] - 1e-6

    def test_report_written_to_configured_path(self, miner_report):
        assert os.path.exists(miner_report["report_path"])
        with open(miner_report["report_path"]) as handle:
            data = json.load(handle)
        obs.validate_report(data)
        assert data["config"]["num_documents"] > 0
        assert data["config"]["vocabulary_size"] > 0

    def test_report_absent_when_disabled(self, miner_report):
        """Without configure(), fit() attaches no report (fast path)."""
        result = miner_report["result"]
        assert result.report is not None  # sanity: enabled run had one
        from repro.datasets import DBLPConfig, generate_dblp
        dataset = generate_dblp(DBLPConfig(max_authors=60), seed=3)
        miner = LatentEntityMiner(
            MinerConfig(num_children=2, max_depth=1), seed=0)
        assert miner.fit(dataset.corpus).report is None


class TestCathyEMTrace:
    def test_trace_has_monotone_likelihood(self):
        texts = (["red green blue"] * 10) + (["cat dog bird"] * 10)
        network = build_term_network(Corpus.from_texts(texts))
        obs.set_enabled(True)
        CathyEM(num_topics=2, seed=0).fit(network)
        traces = obs.get_traces("cathy.em")
        assert traces  # one per restart
        for t in traces:
            assert t.termination in ("converged", "max_iter")
            lls = t.series("log_likelihood")
            assert len(lls) == t.num_iterations
            assert all(b >= a - 1e-6 for a, b in zip(lls, lls[1:]))

    def test_context_describes_problem(self):
        texts = ["alpha beta gamma"] * 6
        network = build_term_network(Corpus.from_texts(texts))
        obs.set_enabled(True)
        CathyEM(num_topics=2, seed=0, restarts=1).fit(network)
        (t,) = obs.get_traces("cathy.em")
        assert t.context["num_topics"] == 2
        assert t.context["num_nodes"] == 3  # alpha, beta, gamma


class TestToPMineTelemetry:
    def test_phases_and_gibbs_trace(self, tiny_corpus):
        obs.set_enabled(True)
        ToPMine(ToPMineConfig(num_topics=2, lda_iterations=8),
                seed=0).fit(tiny_corpus)
        timers = obs.get_registry().snapshot()["timers"]
        for name in ["topmine.frequent_mining", "topmine.segmentation",
                     "topmine.lda", "topmine.ranking"]:
            assert name in timers, name
        (t,) = obs.get_traces("lda.gibbs")
        assert t.termination == "completed"
        assert t.num_iterations == 8
        lls = t.series("log_likelihood")
        assert len(lls) == 8 and all(ll <= 0.0 for ll in lls)


class TestStrodTelemetry:
    def test_power_iteration_traced_per_component(self, planted_small):
        obs.set_enabled(True)
        STROD(num_topics=4, alpha0=1.0, seed=0).fit(
            planted_small.docs, planted_small.vocab_size)
        traces = obs.get_traces("strod.tensor_power")
        assert len(traces) == 4
        for component, t in enumerate(traces):
            assert t.context["component"] == component
            assert t.termination == "completed"
            residuals = t.series("residual")
            assert residuals and residuals[-1] < 0.5
        timers = obs.get_registry().snapshot()["timers"]
        for name in ["strod.fit", "strod.whitening", "strod.third_moment",
                     "strod.tensor_decomposition", "strod.recovery"]:
            assert name in timers, name


class TestTPFGTelemetry:
    @staticmethod
    def _graph():
        graph = CandidateGraph()
        graph.candidates["senior"] = [
            Candidate("senior", "prof", 1995, 2002, 0.8),
            Candidate("senior", ROOT, 1995, 2005, 0.2)]
        graph.candidates["junior"] = [
            Candidate("junior", "senior", 2000, 2004, 0.45),
            Candidate("junior", "prof", 2000, 2004, 0.40),
            Candidate("junior", ROOT, 2000, 2005, 0.15)]
        graph.candidates["prof"] = [
            Candidate("prof", ROOT, 1990, 2005, 1.0)]
        return graph

    def test_message_passing_traced(self):
        obs.set_enabled(True)
        TPFG(max_iter=10).fit(self._graph())
        (t,) = obs.get_traces("tpfg.message_passing")
        assert t.termination == "max_iter"
        assert t.num_iterations == 10
        residuals = t.series("residual")
        # max-sum on a tiny DAG settles: late deltas no larger than early
        assert residuals[-1] <= residuals[0] + 1e-12
        timers = obs.get_registry().snapshot()["timers"]
        assert timers["tpfg.fit"]["count"] == 1
