"""Tests for the integrated LatentEntityMiner facade."""

import pytest

from repro.core import LatentEntityMiner, MinerConfig
from repro.errors import DataError


@pytest.fixture(scope="module")
def mined():
    from repro.datasets import DBLPConfig, generate_dblp
    dataset = generate_dblp(DBLPConfig(max_authors=100), seed=3)
    miner = LatentEntityMiner(
        MinerConfig(num_children=[5, 2], max_depth=2), seed=0)
    return dataset, miner, miner.fit(dataset.corpus)


class TestFit:
    def test_hierarchy_shape(self, mined):
        _, _, result = mined
        assert len(result.hierarchy.root.children) == 5
        assert result.hierarchy.height == 2

    def test_all_components_present(self, mined):
        _, _, result = mined
        assert result.network.num_links() > 0
        assert len(result.counts) > 0
        assert result.roles is not None

    def test_topics_decorated(self, mined):
        _, _, result = mined
        for child in result.hierarchy.root.children:
            assert child.phrases
            assert child.entity_ranks.get("author")
            assert child.entity_ranks.get("venue")

    def test_render_mentions_entities(self, mined):
        _, _, result = mined
        text = result.render(entity_types=["venue"])
        assert "[o/1]" in text
        assert "venue:" in text

    def test_entity_type_restriction(self, mined):
        dataset, _, _ = mined
        miner = LatentEntityMiner(
            MinerConfig(num_children=3, max_depth=1,
                        entity_types=["venue"]), seed=0)
        result = miner.fit(dataset.corpus)
        assert "author" not in result.network.node_types()


class TestRelations:
    def test_mine_relations_pipeline(self, mined):
        dataset, miner, _ = mined
        result, graph, network = miner.mine_relations(dataset.corpus)
        truth = {r.advisee: r.advisor
                 for r in dataset.ground_truth.advising}
        from repro.relations import evaluate_predictions
        accuracy = evaluate_predictions(result.predictions(), truth)
        # This tiny 100-author corpus truncates careers hard; the wiring
        # test only requires beating chance (~0.2 with ~4 candidates).
        assert accuracy.advisee_accuracy > 0.35

    def test_requires_years(self, mined):
        from repro.corpus import Corpus
        _, miner, _ = mined
        corpus = Corpus.from_texts(["alpha"],
                                   entities=[{"author": ["a"]}])
        with pytest.raises(DataError):
            miner.mine_relations(corpus)


class TestEndToEndIntegration:
    def test_hierarchy_matches_ground_truth_areas(self, mined):
        """Level-1 topics mostly align with true areas by venue purity."""
        dataset, _, result = mined
        truth = dataset.ground_truth
        pure = 0
        for child in result.hierarchy.root.children:
            venues = child.top_entities("venue", 3)
            if not venues:
                continue
            areas = [truth.topic_of_entity("venue", v) for v in venues]
            if len(set(areas)) == 1:
                pure += 1
        assert pure >= 3

    def test_roles_consistent_with_hierarchy(self, mined):
        """Top-ranked authors of a topic have most of their mass there."""
        _, _, result = mined
        child = result.hierarchy.root.children[0]
        top_authors = [n for n, _ in result.roles.rank_entities(
            child.notation, "author", top_k=3)]
        for author in top_authors:
            dist = result.roles.entity_distribution("author", author)
            assert dist.get(child.notation, 0.0) >= \
                max(dist.values()) - 1e-9

    def test_news_corpus_end_to_end(self, news_small):
        miner = LatentEntityMiner(
            MinerConfig(num_children=4, max_depth=1), seed=0)
        result = miner.fit(news_small.corpus)
        assert len(result.hierarchy.root.children) == 4
        for child in result.hierarchy.root.children:
            assert child.phi.get("person")
            assert child.phi.get("location")
