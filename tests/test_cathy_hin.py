"""Tests for the heterogeneous CATHYHIN model (Section 3.2)."""

import numpy as np
import pytest

from repro.cathy import CathyHIN
from repro.corpus import Corpus
from repro.errors import ConfigurationError, NotFittedError
from repro.network import build_collapsed_network


@pytest.fixture
def hetero_network():
    """Two clean communities with authors and venues."""
    texts = (["red green blue"] * 8) + (["cat dog bird"] * 8)
    entities = ([{"author": ["ann", "abe"], "venue": ["COLOR"]}] * 8
                + [{"author": ["zoe", "zed"], "venue": ["ANIMAL"]}] * 8)
    corpus = Corpus.from_texts(texts, entities=entities)
    return build_collapsed_network(corpus)


class TestBasicModel:
    def test_separates_communities(self, hetero_network):
        model = CathyHIN(num_topics=2, seed=0).fit(hetero_network)
        venues0 = model.top_nodes("venue", 0, 1)
        venues1 = model.top_nodes("venue", 1, 1)
        assert {venues0[0], venues1[0]} == {"COLOR", "ANIMAL"}
        # Terms and authors separate consistently with the venue.
        for z, venue in ((0, venues0[0]), (1, venues1[0])):
            terms = set(model.top_nodes("term", z, 3))
            if venue == "COLOR":
                assert terms == {"red", "green", "blue"}
            else:
                assert terms == {"cat", "dog", "bird"}

    def test_phi_distributions_normalized(self, hetero_network):
        model = CathyHIN(num_topics=2, seed=0).fit(hetero_network)
        for node_type, phi in model.phi.items():
            assert np.allclose(phi.sum(axis=1), 1.0, atol=1e-6)
            assert model.phi_background[node_type].sum() == pytest.approx(
                1.0, abs=1e-6)

    def test_rho_plus_background_is_one(self, hetero_network):
        model = CathyHIN(num_topics=2, seed=0).fit(hetero_network)
        assert model.rho.sum() + model.rho0 == pytest.approx(1.0, abs=1e-6)

    def test_no_background_option(self, hetero_network):
        model = CathyHIN(num_topics=2, background=False,
                         seed=0).fit(hetero_network)
        assert model.rho0 == 0.0

    def test_invalid_weight_mode(self):
        with pytest.raises(ConfigurationError):
            CathyHIN(num_topics=2, weight_mode="bogus")

    def test_requires_fit_for_subnetwork(self, hetero_network):
        with pytest.raises(NotFittedError):
            CathyHIN(num_topics=2).subnetwork(0)


class TestWeightModes:
    def test_explicit_weights_accepted(self, hetero_network):
        weights = {lt: 1.0 for lt in hetero_network.link_types()}
        model = CathyHIN(num_topics=2, weight_mode=weights,
                         seed=0).fit(hetero_network)
        assert set(model.alpha) == set(hetero_network.link_types())

    def test_norm_mode_equalizes_scaled_totals(self, hetero_network):
        model = CathyHIN(num_topics=2, weight_mode="norm",
                         seed=0).fit(hetero_network)
        totals = [model.alpha[lt] * hetero_network.total_weight(lt)
                  for lt in hetero_network.link_types()]
        assert max(totals) / min(totals) == pytest.approx(1.0, rel=1e-6)

    def test_learned_weights_satisfy_theorem_3_2(self, hetero_network):
        model = CathyHIN(num_topics=2, weight_mode="learn",
                         seed=0).fit(hetero_network)
        log_sum = sum(
            hetero_network.num_links(lt) * np.log(model.alpha[lt])
            for lt in hetero_network.link_types())
        assert log_sum == pytest.approx(0.0, abs=1e-6)

    def test_learned_weights_positive(self, hetero_network):
        model = CathyHIN(num_topics=2, weight_mode="learn",
                         seed=0).fit(hetero_network)
        assert all(v > 0 for v in model.alpha.values())


class TestSubnetworks:
    def test_expected_weights_bounded_by_scaled_observed(self,
                                                         hetero_network):
        estimator = CathyHIN(num_topics=2, seed=0)
        model = estimator.fit(hetero_network)
        for link_type in hetero_network.link_types():
            alpha = model.alpha[link_type]
            observed = hetero_network.link_dict(link_type)
            for z in range(2):
                bucket = estimator.expected_link_weights(z)[link_type]
                for key, value in bucket.items():
                    assert value <= alpha * observed[key] + 1e-9

    def test_subnetwork_smaller_than_parent(self, hetero_network):
        estimator = CathyHIN(num_topics=2, seed=0)
        estimator.fit(hetero_network)
        sub = estimator.subnetwork(0)
        assert sub.total_weight() < hetero_network.total_weight()

    def test_bic_computable(self, hetero_network):
        estimator = CathyHIN(num_topics=2, seed=0)
        estimator.fit(hetero_network)
        assert np.isfinite(estimator.bic())


class TestOnSyntheticDBLP:
    def test_recovers_area_venues(self, dblp_network):
        """Each discovered topic's top venues come from one true area."""
        model = CathyHIN(num_topics=6, weight_mode="learn",
                         max_iter=80, seed=0).fit(dblp_network)
        pure_topics = 0
        for z in range(6):
            venues = model.top_nodes("venue", z, 3)
            prefixes = {v.split("-")[0] for v in venues}
            if len(prefixes) == 1:
                pure_topics += 1
        assert pure_topics >= 4

    def test_monotone_likelihood_on_real_shape(self, dblp_network):
        values = []
        for iterations in (2, 10, 40):
            model = CathyHIN(num_topics=4, max_iter=iterations,
                             seed=5).fit(dblp_network)
            values.append(model.log_likelihood)
        assert values[-1] >= values[0] - 1e-6


class TestBayesianPriors:
    """The Section 3.2.3 extension: Dirichlet pseudo-count smoothing."""

    def test_phi_prior_removes_zeros(self, hetero_network):
        model = CathyHIN(num_topics=2, phi_prior=0.5, max_iter=40,
                         seed=0).fit(hetero_network)
        for phi in model.phi.values():
            assert np.all(phi > 0)

    def test_rho_prior_balances_subtopics(self):
        # Unequal communities: 24 vs 4 documents.
        texts = ["red green blue"] * 24 + ["cat dog bird"] * 4
        entities = ([{"venue": ["COLOR"]}] * 24
                    + [{"venue": ["ANIMAL"]}] * 4)
        network = build_collapsed_network(
            Corpus.from_texts(texts, entities=entities))
        plain = CathyHIN(num_topics=2, max_iter=60, seed=2).fit(network)
        smoothed = CathyHIN(num_topics=2, rho_prior=10 ** 4, max_iter=60,
                            seed=2).fit(network)

        def spread(rho):
            return float(rho.max() - rho.min())

        assert spread(smoothed.rho) < spread(plain.rho)

    def test_negative_prior_rejected(self):
        with pytest.raises(ConfigurationError):
            CathyHIN(num_topics=2, rho_prior=-1.0)
        with pytest.raises(ConfigurationError):
            CathyHIN(num_topics=2, phi_prior=-0.1)
