"""Exactness tests: TPFG inference vs brute-force enumeration.

On small candidate graphs the joint objective of Eq. 6.7 — the product of
local likelihoods and the time-constraint indicators of Eq. 6.9 — can be
maximized by enumerating every advisor assignment.  Max-sum message
passing must find the same maximizer on tree-structured instances.
"""

from itertools import product as iter_product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relations import Candidate, CandidateGraph, ROOT, TPFG


def brute_force_map(graph: CandidateGraph):
    """Enumerate all assignments; return the max-scoring one."""
    authors = graph.authors
    domains = [graph.advisors_of(a) for a in authors]
    best_score, best_assignment = -np.inf, None
    for choice in iter_product(*[range(len(d)) for d in domains]):
        assignment = {a: domains[i][choice[i]]
                      for i, a in enumerate(authors)}
        score = 0.0
        valid = True
        for author, candidate in assignment.items():
            score += np.log(max(candidate.likelihood, 1e-12))
        # Constraints: if x is advised by i, i's own advised period must
        # end before st_xi (Eq. 6.9).
        for author, candidate in assignment.items():
            advisor = candidate.advisor
            if advisor == ROOT or advisor not in assignment:
                continue
            advisor_choice = assignment[advisor]
            if advisor_choice.advisor != ROOT and \
                    advisor_choice.end >= candidate.start:
                valid = False
                break
        if valid and score > best_score:
            best_score = score
            best_assignment = {a: c.advisor
                               for a, c in assignment.items()}
    return best_assignment


def random_chain_graph(rng: np.random.Generator,
                       num_authors: int) -> CandidateGraph:
    """A random layered candidate graph (guaranteed DAG)."""
    graph = CandidateGraph()
    names = [f"a{i}" for i in range(num_authors)]
    for i, name in enumerate(names):
        start = 1990 + 3 * i
        candidates = []
        # Earlier authors are potential advisors.
        for j in range(i):
            if rng.random() < 0.7:
                st_year = start + int(rng.integers(0, 3))
                candidates.append(Candidate(
                    advisee=name, advisor=names[j],
                    start=st_year,
                    end=st_year + int(rng.integers(1, 5)),
                    likelihood=float(rng.uniform(0.1, 1.0))))
        candidates.append(Candidate(
            advisee=name, advisor=ROOT, start=start, end=2020,
            likelihood=float(rng.uniform(0.1, 0.5))))
        total = sum(c.likelihood for c in candidates)
        for c in candidates:
            c.likelihood /= total
        graph.candidates[name] = candidates
    return graph


class TestExactness:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_on_small_graphs(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_chain_graph(rng, num_authors=4)
        exact = brute_force_map(graph)
        result = TPFG(max_iter=30).fit(graph)
        # Compare MAP choices; message passing may differ on exact ties,
        # so compare joint scores instead of raw labels.
        tpfg_assignment = {}
        for author in graph.authors:
            best = max(result.ranking[author], key=lambda p: p[1])
            tpfg_assignment[author] = best[0]

        def joint_score(assignment):
            score = 0.0
            lookup = {a: {c.advisor: c for c in graph.advisors_of(a)}
                      for a in graph.authors}
            for author, advisor in assignment.items():
                candidate = lookup[author][advisor]
                score += np.log(max(candidate.likelihood, 1e-12))
                if advisor != ROOT and advisor in assignment:
                    advisor_choice = lookup[advisor][assignment[advisor]]
                    if advisor_choice.advisor != ROOT and \
                            advisor_choice.end >= candidate.start:
                        return -np.inf
            return score

        exact_score = joint_score(exact)
        tpfg_score = joint_score(tpfg_assignment)
        # Loopy max-sum is exact on trees and near-exact on these sparse
        # graphs; allow a tiny slack for genuinely loopy instances.
        assert tpfg_score >= exact_score - 0.35

    def test_exact_on_hand_built_tree(self):
        graph = CandidateGraph()
        graph.candidates["root"] = [
            Candidate("root", ROOT, 1990, 2020, 1.0)]
        graph.candidates["mid"] = [
            Candidate("mid", "root", 1995, 1999, 0.7),
            Candidate("mid", ROOT, 1995, 2020, 0.3)]
        graph.candidates["leaf"] = [
            Candidate("leaf", "mid", 2002, 2006, 0.6),
            Candidate("leaf", "root", 2002, 2006, 0.3),
            Candidate("leaf", ROOT, 2002, 2020, 0.1)]
        exact = brute_force_map(graph)
        result = TPFG(max_iter=20).fit(graph)
        for author, advisor in exact.items():
            predicted = max(result.ranking[author],
                            key=lambda p: p[1])[0]
            assert predicted == advisor

    def test_constraint_changes_brute_force_answer(self):
        """Sanity for the reference implementation itself."""
        graph = CandidateGraph()
        graph.candidates["senior"] = [
            Candidate("senior", "prof", 1995, 2005, 0.9),
            Candidate("senior", ROOT, 1995, 2020, 0.1)]
        graph.candidates["junior"] = [
            Candidate("junior", "senior", 2000, 2004, 0.8),
            Candidate("junior", ROOT, 2000, 2020, 0.2)]
        graph.candidates["prof"] = [
            Candidate("prof", ROOT, 1990, 2020, 1.0)]
        exact = brute_force_map(graph)
        # junior choosing senior conflicts with senior's strong advisor
        # preference; the joint optimum drops junior to ROOT.
        assert exact["senior"] == "prof"
        assert exact["junior"] == ROOT
