"""Tests for the intrusion task harness."""

import pytest

from repro.eval import (LabelAffinity, SimulatedAnnotator,
                        generate_intrusion_questions,
                        generate_topic_intrusion_questions,
                        hierarchy_entity_groups, hierarchy_phrase_groups,
                        jensen_shannon, run_intrusion_task,
                        run_topic_intrusion_task)


class TestLabelAffinity:
    def test_phrase_distribution_peaks_on_topic(self, dblp_small):
        affinity = LabelAffinity(dblp_small.corpus)
        truth = dblp_small.ground_truth
        leaf = next(p for p, spec in truth.paths.items()
                    if not spec.children)
        phrase = truth.normalized_phrases(leaf)[0]
        dist = affinity.phrase_distribution(phrase)
        # A pure leaf phrase puts ~1/3 mass on each of its three prefix
        # dimensions (leaf, area, root).
        assert dist.max() > 0.3
        assert (dist > 0.05).sum() <= 4

    def test_entity_distribution_peaks_on_home_topic(self, dblp_small):
        affinity = LabelAffinity(dblp_small.corpus)
        venue = next(iter(
            dblp_small.ground_truth.entity_topics["venue"]))
        dist = affinity.entity_distribution("venue", venue)
        assert dist.max() > 0.1

    def test_unknown_phrase_uniform(self, dblp_small):
        affinity = LabelAffinity(dblp_small.corpus)
        dist = affinity.phrase_distribution("zzz qqq www")
        assert dist.max() == pytest.approx(dist.min())

    def test_caching_stable(self, dblp_small):
        affinity = LabelAffinity(dblp_small.corpus)
        a = affinity.phrase_distribution("data")
        b = affinity.phrase_distribution("data")
        assert a is b


class TestJensenShannon:
    def test_identical_is_zero(self):
        import numpy as np
        p = np.array([0.5, 0.5])
        assert jensen_shannon(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_is_maximal(self):
        import numpy as np
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon(p, q) == pytest.approx(np.log(2), rel=1e-3)

    def test_symmetry(self):
        import numpy as np
        p = np.array([0.7, 0.3])
        q = np.array([0.2, 0.8])
        assert jensen_shannon(p, q) == pytest.approx(jensen_shannon(q, p))


class TestQuestionGeneration:
    def test_question_shape(self):
        groups = [[["a1", "a2", "a3", "a4", "a5"],
                   ["b1", "b2", "b3", "b4", "b5"]]]
        questions = generate_intrusion_questions(groups, 10, seed=0)
        assert len(questions) == 10
        for question in questions:
            assert len(question.options) == 5
            assert 0 <= question.intruder_index < 5
            intruder = question.options[question.intruder_index]
            assert intruder.startswith("a") != \
                question.options[(question.intruder_index + 1) % 5].startswith("a")

    def test_no_usable_groups_gives_empty(self):
        assert generate_intrusion_questions([[["only"]]], 5, seed=0) == []

    def test_intruder_never_in_topic(self):
        groups = [[["a1", "a2", "a3", "a4", "shared"],
                   ["b1", "b2", "shared", "b4", "b5"]]]
        questions = generate_intrusion_questions(groups, 30, seed=1)
        for question in questions:
            assert question.options[question.intruder_index] != "shared"


class TestTaskExecution:
    def test_oracle_annotator_near_perfect_on_truth(self, dblp_small):
        """Ground-truth topic groups + noiseless annotator -> ~100%."""
        truth = dblp_small.ground_truth
        group = []
        for area in range(3):
            phrases = []
            for path, spec in truth.paths.items():
                if path[:1] == (area,) and len(path) == 2:
                    phrases.extend(truth.normalized_phrases(path))
            group.append(phrases)
        questions = generate_intrusion_questions([group], 30, seed=0)
        score = run_intrusion_task(questions, dblp_small.corpus,
                                   noise=0.0, seed=1)
        assert score > 0.9

    def test_random_topics_score_low(self, dblp_small):
        """Shuffled (incoherent) topics are hard even for the oracle."""
        import numpy as np
        truth = dblp_small.ground_truth
        all_phrases = []
        for path in truth.paths:
            all_phrases.extend(truth.normalized_phrases(path))
        rng = np.random.default_rng(0)
        rng.shuffle(all_phrases)
        third = len(all_phrases) // 3
        group = [all_phrases[:third], all_phrases[third:2 * third],
                 all_phrases[2 * third:]]
        questions = generate_intrusion_questions([group], 30, seed=0)
        score = run_intrusion_task(questions, dblp_small.corpus,
                                   noise=0.0, seed=1)
        assert score < 0.5

    def test_noise_degrades_score(self, dblp_small):
        truth = dblp_small.ground_truth
        group = []
        for area in range(3):
            phrases = []
            for path, spec in truth.paths.items():
                if path[:1] == (area,) and len(path) == 2:
                    phrases.extend(truth.normalized_phrases(path))
            group.append(phrases)
        questions = generate_intrusion_questions([group], 40, seed=0)
        clean = run_intrusion_task(questions, dblp_small.corpus,
                                   noise=0.0, seed=1)
        noisy = run_intrusion_task(questions, dblp_small.corpus,
                                   noise=1.0, seed=1)
        assert noisy < clean

    def test_empty_questions_zero(self, dblp_small):
        assert run_intrusion_task([], dblp_small.corpus) == 0.0


class TestHierarchyGroups:
    @pytest.fixture(scope="class")
    def hierarchy(self, dblp_small):
        from repro.core import LatentEntityMiner, MinerConfig
        miner = LatentEntityMiner(
            MinerConfig(num_children=[4, 2], max_depth=2), seed=0)
        return miner.fit(dblp_small.corpus).hierarchy

    def test_phrase_groups_cover_internal_nodes(self, hierarchy):
        groups = hierarchy_phrase_groups(hierarchy)
        assert len(groups) >= 1
        assert all(len(group) >= 2 for group in groups)

    def test_entity_groups(self, hierarchy):
        groups = hierarchy_entity_groups(hierarchy, "venue")
        assert groups

    def test_topic_intrusion_pipeline(self, hierarchy, dblp_small):
        questions = generate_topic_intrusion_questions(
            hierarchy, 20, candidates_per_question=3, seed=0)
        assert questions
        score = run_topic_intrusion_task(questions, dblp_small.corpus,
                                         seed=1)
        assert 0.0 <= score <= 1.0
