"""Fault-injection harness for the resilience test suite.

Provides module-level work functions that misbehave *only inside pool
workers* (so the serial fallback re-run in the parent succeeds and the
degraded map can be compared against the healthy result), a
:class:`CrashingCheckpoint` writer that kills a fit after a chosen
checkpoint write (simulating a SIGKILL mid-run with the checkpoint
already on disk), and helpers that damage checkpoint files the way real
crashes and bit rot do.

Everything here must stay importable by pool workers under any start
method, hence the module-level functions.
"""

from __future__ import annotations

import os
import signal
import time

from repro.parallel import in_worker
from repro.resilience import CheckpointWriter


class FaultInjected(RuntimeError):
    """Raised by :class:`CrashingCheckpoint` to simulate a hard kill."""


def echo(item):
    """Control function: well-behaved everywhere."""
    return item


def die_in_worker(item):
    """SIGKILL the hosting process when run inside a pool worker.

    In the parent (serial fallback) it behaves like :func:`echo`, so a
    degraded map must return exactly what a healthy one would.
    """
    if in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return item


def die_on_odd_items(item):
    """SIGKILL the worker only for odd items; even items succeed."""
    if in_worker() and item % 2 == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return item


def raise_value_error(item):
    """Deterministic work-function failure (not an infrastructure fault)."""
    raise ValueError(f"injected work error on item {item!r}")


def hang_in_worker(item):
    """Sleep far past any test timeout when run inside a pool worker."""
    if in_worker():
        time.sleep(30.0)
    return item


class CrashingCheckpoint(CheckpointWriter):
    """A checkpoint writer that raises after its N-th successful save.

    The save completes (the file is on disk, atomically) before the
    crash fires — exactly the state a SIGKILLed process leaves behind —
    so a resumed fit must pick up from the persisted state.
    """

    def __init__(self, *args, crash_after: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.crash_after = crash_after
        self.saves = 0

    def save(self, iteration, state) -> None:
        super().save(iteration, state)
        self.saves += 1
        if self.saves >= self.crash_after:
            raise FaultInjected(
                f"injected crash after checkpoint save #{self.saves}")


def truncate_file(path: str, keep_bytes: int) -> None:
    """Cut a file down to its first ``keep_bytes`` bytes (partial write)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[:keep_bytes])


def corrupt_file(path: str, offset: int = -1) -> None:
    """Flip every bit of one byte (default: the last) of a file."""
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
