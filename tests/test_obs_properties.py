"""Property-based tests on observability traces (hypothesis).

The CATHY Poisson EM (Section 3.1) maximises a single fixed objective,
so the per-iteration log-likelihood recorded by the convergence tracer
must be non-decreasing on *any* corpus — not just the handcrafted ones
in test_cathy_em.py.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.cathy import CathyEM
from repro.corpus import Corpus
from repro.network import build_term_network

VOCAB = ["query", "database", "index", "vector", "kernel", "graph"]

documents = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=2, max_size=6),
    min_size=3, max_size=8)


class TestTracedEMMonotonicity:
    @given(documents)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_log_likelihood_series_non_decreasing(self, docs):
        corpus = Corpus.from_texts([" ".join(doc) for doc in docs])
        network = build_term_network(corpus)
        assume(network.num_links() > 0)
        obs.reset()
        obs.set_enabled(True)
        try:
            CathyEM(num_topics=2, max_iter=30, seed=0).fit(network)
            traces = obs.get_traces("cathy.em")
            assert traces
            for trace in traces:
                lls = trace.series("log_likelihood")
                assert len(lls) == trace.num_iterations >= 1
                scale = max(1.0, abs(lls[0]))
                for earlier, later in zip(lls, lls[1:]):
                    assert later >= earlier - 1e-9 * scale
                assert trace.termination in ("converged", "max_iter")
        finally:
            obs.reset()

    @given(documents)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_converged_runs_stop_before_max_iter(self, docs):
        corpus = Corpus.from_texts([" ".join(doc) for doc in docs])
        network = build_term_network(corpus)
        assume(network.num_links() > 0)
        obs.reset()
        obs.set_enabled(True)
        try:
            CathyEM(num_topics=2, max_iter=200, seed=0).fit(network)
            for trace in obs.get_traces("cathy.em"):
                if trace.termination == "converged":
                    # Convergence may land exactly on the final allowed
                    # iteration; only exceeding the budget is a bug.
                    assert trace.num_iterations <= 200
                else:
                    assert trace.num_iterations == 200
        finally:
            obs.reset()
