"""Tests for repro.hierarchy."""

import json

import pytest

from repro.errors import DataError
from repro.hierarchy import (Topic, TopicalHierarchy, notation_to_path,
                             path_to_notation)


class TestNotation:
    def test_root(self):
        assert path_to_notation(()) == "o"

    def test_nested_one_based(self):
        assert path_to_notation((0, 1)) == "o/1/2"

    def test_roundtrip(self):
        for path in [(), (0,), (2, 1, 0)]:
            assert notation_to_path(path_to_notation(path)) == path

    def test_bad_notation_raises(self):
        with pytest.raises(DataError):
            notation_to_path("x/1")
        with pytest.raises(DataError):
            notation_to_path("o/abc")


@pytest.fixture
def small_tree():
    hierarchy = TopicalHierarchy()
    a = hierarchy.root.add_child(Topic(rho=0.6))
    b = hierarchy.root.add_child(Topic(rho=0.4))
    a.add_child(Topic(rho=0.3))
    a.add_child(Topic(rho=0.3))
    a.phi["term"] = {"query": 0.5, "database": 0.3, "index": 0.2}
    a.phrases = [("query processing", 1.0), ("database systems", 0.5)]
    a.entity_ranks["venue"] = [("SIGMOD", 0.4), ("VLDB", 0.3)]
    return hierarchy, a, b


class TestTopic:
    def test_paths_assigned_on_add(self, small_tree):
        hierarchy, a, b = small_tree
        assert a.path == (0,)
        assert b.path == (1,)
        assert a.children[1].path == (0, 1)

    def test_notation_and_level(self, small_tree):
        _, a, _ = small_tree
        assert a.notation == "o/1"
        assert a.children[0].notation == "o/1/1"
        assert a.children[0].level == 2

    def test_top_words_sorted(self, small_tree):
        _, a, _ = small_tree
        assert a.top_words("term", 2) == ["query", "database"]

    def test_top_phrases_and_entities(self, small_tree):
        _, a, _ = small_tree
        assert a.top_phrases(1) == ["query processing"]
        assert a.top_entities("venue", 1) == ["SIGMOD"]

    def test_phi_vector_order(self, small_tree):
        _, a, _ = small_tree
        vec = a.phi_vector("term", ["database", "missing"])
        assert vec[0] == pytest.approx(0.3)
        assert vec[1] == 0.0

    def test_is_leaf(self, small_tree):
        _, a, b = small_tree
        assert b.is_leaf
        assert not a.is_leaf


class TestHierarchy:
    def test_preorder_traversal(self, small_tree):
        hierarchy, _, _ = small_tree
        notations = [t.notation for t in hierarchy.topics()]
        assert notations == ["o", "o/1", "o/1/1", "o/1/2", "o/2"]

    def test_lookup_by_notation_and_path(self, small_tree):
        hierarchy, a, _ = small_tree
        assert hierarchy.topic("o/1") is a
        assert hierarchy.topic((0, 1)) is a.children[1]

    def test_lookup_missing_raises(self, small_tree):
        hierarchy, _, _ = small_tree
        with pytest.raises(DataError):
            hierarchy.topic("o/9")

    def test_parent_of(self, small_tree):
        hierarchy, a, _ = small_tree
        assert hierarchy.parent_of(a) is hierarchy.root
        assert hierarchy.parent_of(hierarchy.root) is None
        assert hierarchy.parent_of(a.children[0]) is a

    def test_shape_stats(self, small_tree):
        hierarchy, _, _ = small_tree
        assert hierarchy.height == 2
        assert hierarchy.width == 2
        assert hierarchy.num_topics == 5

    def test_leaves(self, small_tree):
        hierarchy, _, _ = small_tree
        assert [t.notation for t in hierarchy.leaves()] == \
            ["o/1/1", "o/1/2", "o/2"]

    def test_to_json_parses(self, small_tree):
        hierarchy, _, _ = small_tree
        data = json.loads(hierarchy.to_json())
        assert data["notation"] == "o"
        assert len(data["children"]) == 2

    def test_render_contains_phrases(self, small_tree):
        hierarchy, _, _ = small_tree
        text = hierarchy.render(entity_types=["venue"])
        assert "query processing" in text
        assert "SIGMOD" in text

    def test_render_empty_hierarchy_degrades(self):
        text = TopicalHierarchy().render()
        assert text == "[o] (no ranked phrases)"

    def test_render_undecorated_nodes_get_placeholder(self, small_tree):
        hierarchy, _, b = small_tree
        lines = hierarchy.render().splitlines()
        # b mined no phrases, terms, or entities; its line still renders.
        b_line = next(line for line in lines
                      if line.strip().startswith(f"[{b.notation}]"))
        assert "(no ranked phrases)" in b_line
        assert not b_line.endswith(" ")

    def test_render_falls_back_to_terms(self, small_tree):
        hierarchy, a, _ = small_tree
        a.phrases = []
        text = hierarchy.render()
        assert "query" in text  # phi["term"] fallback
        assert "(no ranked phrases)" not in text.splitlines()[1]

    def test_render_negative_max_phrases_clamped(self, small_tree):
        hierarchy, _, _ = small_tree
        text = hierarchy.render(max_phrases=-3)
        assert "(no ranked phrases)" in text  # no crash, placeholder line

    def test_root_must_have_empty_path(self):
        with pytest.raises(DataError):
            TopicalHierarchy(root=Topic(path=(0,)))

    def test_map_topics(self, small_tree):
        hierarchy, _, _ = small_tree
        hierarchy.map_topics(lambda t: t.entity_ranks.setdefault("x", []))
        assert all("x" in t.entity_ranks for t in hierarchy.topics())
