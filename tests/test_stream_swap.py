"""Zero-downtime hot model swap, on both serving frontends.

The serving half of the streaming story (ISSUE 9): while `repro ingest`
rewrites the artifact, a running server must atomically route new
requests to the new model — via ``POST /v1/admin/reload`` or SIGHUP —
with requests already in flight draining on the engine they started
with.  Pinned here: the lease/retire drain protocol, zero non-200s
under concurrent load across a reload, and the version bump showing up
in ``/v1/model``, ``/healthz``, and both ``/metrics`` formats.
"""

import json
import os
import shutil
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (ModelAsyncServer, ModelQueryEngine, ModelServer,
                         load_model)
from repro.serve.router import EngineHandle
from repro.stream import IngestPipeline, ShardStore

from .test_stream_ingest import BATCHES, _config


@pytest.fixture(scope="module")
def model_paths(tmp_path_factory):
    """Two artifacts off one stream: model_version 1 and model_version 3."""
    root = tmp_path_factory.mktemp("stream-models")
    live = str(root / "model.rmv2")
    pipeline = IngestPipeline(ShardStore(str(root / "log")),
                              _config(export_path=live))
    pipeline.ingest_batch(BATCHES[0])
    v1 = str(root / "model-v1.rmv2")
    shutil.copy(live, v1)
    for batch in BATCHES[1:]:
        pipeline.ingest_batch(batch)
    return v1, live


def _engine(path):
    return ModelQueryEngine(load_model(path))


@pytest.fixture(params=["threaded", "async"])
def server(request, model_paths):
    cls = ModelServer if request.param == "threaded" else ModelAsyncServer
    with cls(_engine(model_paths[0]), port=0) as srv:
        srv.start()
        yield srv


def _get(server, path, expect_status=200):
    url = f"http://{server.host}:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        assert exc.status == expect_status, exc.read()
        return exc.status, json.loads(exc.read())


def _post(server, path, expect_status=200):
    url = f"http://{server.host}:{server.port}{path}"
    request = urllib.request.Request(
        url, data=b"{}", headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        assert exc.status == expect_status, exc.read()
        return exc.status, json.loads(exc.read())


class TestEngineHandle:
    class _Stub:
        def __init__(self):
            self.closed = 0
            self.model = None

        def close(self):
            self.closed += 1

    def test_closes_only_after_retire_and_last_release(self):
        stub = self._Stub()
        handle = EngineHandle(stub)
        handle.acquire()
        handle.acquire()
        handle.retire()
        assert stub.closed == 0  # two requests still draining
        handle.release()
        assert stub.closed == 0
        handle.release()
        assert stub.closed == 1

    def test_retire_with_no_leases_closes_immediately(self):
        stub = self._Stub()
        EngineHandle(stub).retire()
        assert stub.closed == 1

    def test_release_without_retire_keeps_engine_open(self):
        stub = self._Stub()
        handle = EngineHandle(stub)
        handle.acquire()
        handle.release()
        assert stub.closed == 0

    def test_close_errors_are_swallowed(self):
        class _Explosive:
            def close(self):
                raise RuntimeError("boom")

        EngineHandle(_Explosive()).retire()  # must not raise

    def test_v2_engine_stays_mapped_until_drained(self, model_paths):
        engine = _engine(model_paths[0])
        assert engine.artifact_format == "v2"
        handle = EngineHandle(engine).acquire()
        handle.retire()
        assert engine.model._mmap is not None  # lease out: still mapped
        assert engine.model_info()["model_version"] == 1
        handle.release()
        assert engine.model._mmap is None  # last lease gone: unmapped


class TestHotSwap:
    def test_reload_without_reloader_is_400(self, server):
        status, payload = _post(server, "/v1/admin/reload",
                                expect_status=400)
        assert status == 400
        assert "no reloader configured" in payload["error"]

    def test_reload_under_concurrent_load(self, server, model_paths):
        v1, v3 = model_paths
        server.set_reloader(lambda: _engine(v3))
        failures, stop = [], threading.Event()

        def hammer():
            while not stop.is_set():
                url = (f"http://{server.host}:{server.port}"
                       f"/v1/model")
                try:
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        if resp.status != 200:
                            failures.append(resp.status)
                        json.loads(resp.read())
                except Exception as exc:  # noqa: BLE001 - tallied below
                    failures.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.2)
            for _ in range(2):
                status, payload = _post(server, "/v1/admin/reload")
                assert status == 200
                assert payload["status"] == "reloaded"
                assert payload["model_version"] == 3
                assert payload["artifact_format"] == "v2"
                time.sleep(0.2)
            assert payload["swaps"] == 2
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not failures  # the acceptance bar: zero dropped requests

        _, model = _get(server, "/v1/model")
        assert model["model_version"] == 3
        assert model["artifact_format"] == "v2"
        assert model["repro_version"]
        assert model["config_fingerprint"]
        _, health = _get(server, "/healthz")
        assert health["model_version"] == 3
        _, metrics = _get(server, "/metrics")
        assert metrics["model"]["version"] == 3
        assert metrics["model"]["swaps"] == 2
        combined = metrics["combined"]
        assert combined["gauges"]["serve.model.version"] == 3.0
        assert combined["counters"]["serve.engine.swaps"] == 2.0
        url = (f"http://{server.host}:{server.port}"
               f"/metrics?format=prometheus")
        with urllib.request.urlopen(url, timeout=10) as response:
            text = response.read().decode("utf-8")
        assert "repro_serve_model_version 3.0" in text
        assert "repro_serve_engine_swaps_total 2.0" in text

    def test_model_endpoint_before_any_swap(self, server):
        _, model = _get(server, "/v1/model")
        assert model["model_version"] == 1
        _, metrics = _get(server, "/metrics")
        assert metrics["model"]["swaps"] == 0
        assert metrics["combined"]["counters"]["serve.engine.swaps"] == 0.0

    @pytest.mark.skipif(not hasattr(signal, "SIGHUP"),
                        reason="platform has no SIGHUP")
    def test_sighup_hot_reloads(self, server, model_paths):
        server.set_reloader(lambda: _engine(model_paths[1]))
        server.install_signal_handlers(signals=())
        os.kill(os.getpid(), signal.SIGHUP)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            _, health = _get(server, "/healthz")
            if health["model_version"] == 3:
                return
            time.sleep(0.05)
        pytest.fail("SIGHUP did not hot-swap the model within 10s")
