"""Tests for PMI / HPMI metrics (Eq. 3.44-3.45)."""

import pytest

from repro.corpus import Corpus
from repro.eval import CooccurrenceStatistics, hpmi, hpmi_table, \
    top_frequency_topic
from repro.network import TERM_TYPE


@pytest.fixture
def stats_corpus():
    texts = ["alpha beta"] * 10 + ["gamma delta"] * 10 + ["alpha gamma"]
    entities = ([{"venue": ["V1"]}] * 10 + [{"venue": ["V2"]}] * 10
                + [{"venue": ["V1"]}])
    return Corpus.from_texts(texts, entities=entities)


class TestPMI:
    def test_cooccurring_pair_positive(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        assert stats.pmi(TERM_TYPE, "alpha", TERM_TYPE, "beta") > 0

    def test_never_cooccurring_pair_negative(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        assert stats.pmi(TERM_TYPE, "beta", TERM_TYPE, "delta") < 0

    def test_unknown_item_finite(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        value = stats.pmi(TERM_TYPE, "zzz", TERM_TYPE, "alpha")
        assert value == value  # not NaN
        assert value < 0

    def test_cross_type_pmi(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        assert stats.pmi(TERM_TYPE, "alpha", "venue", "V1") > \
            stats.pmi(TERM_TYPE, "alpha", "venue", "V2")

    def test_probability(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        assert stats.probability(TERM_TYPE, "alpha") == pytest.approx(11 / 21)


class TestHPMI:
    def test_coherent_topic_beats_mixed(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        coherent = {TERM_TYPE: ["alpha", "beta"]}
        mixed = {TERM_TYPE: ["alpha", "delta"]}
        assert hpmi(stats, coherent, TERM_TYPE, TERM_TYPE) > \
            hpmi(stats, mixed, TERM_TYPE, TERM_TYPE)

    def test_empty_topic_scores_zero(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        assert hpmi(stats, {}, TERM_TYPE, TERM_TYPE) == 0.0

    def test_table_has_overall(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        topics = [{TERM_TYPE: ["alpha", "beta"], "venue": ["V1"]},
                  {TERM_TYPE: ["gamma", "delta"], "venue": ["V2"]}]
        table = hpmi_table(stats, topics,
                           [(TERM_TYPE, TERM_TYPE), (TERM_TYPE, "venue")])
        assert set(table) == {"term-term", "term-venue", "overall"}

    def test_venue_override_limits_k(self, stats_corpus):
        stats = CooccurrenceStatistics(stats_corpus)
        topics = [{TERM_TYPE: ["alpha", "beta"], "venue": ["V1", "V2"]}]
        limited = hpmi_table(stats, topics, [(TERM_TYPE, "venue")],
                             top_k_overrides={"venue": 1})
        full = hpmi_table(stats, topics, [(TERM_TYPE, "venue")])
        assert limited["term-venue"] != full["term-venue"]


class TestTopKBaseline:
    def test_returns_most_frequent(self, stats_corpus):
        topic = top_frequency_topic(stats_corpus, ["venue"], top_k=2)
        assert topic[TERM_TYPE][0] in ("alpha", "gamma")
        assert topic["venue"][0] == "V1"

    def test_method_ordering_on_dblp(self, dblp_small):
        """Sanity: a ground-truth-pure topic outscores the TopK topic."""
        corpus = dblp_small.corpus
        stats = CooccurrenceStatistics(corpus)
        truth = dblp_small.ground_truth
        # Build an oracle topic from one true area's vocabulary.
        area = truth.hierarchy.children[0]
        words = [w for child in area.children
                 for w in child.all_words()][:20]
        venues = [v for v, path in truth.entity_topics["venue"].items()
                  if path == (0,)]
        oracle = {TERM_TYPE: words, "venue": venues[:3]}
        baseline = top_frequency_topic(corpus, ["venue"])
        link_types = [(TERM_TYPE, TERM_TYPE), (TERM_TYPE, "venue")]
        oracle_score = hpmi_table(stats, [oracle], link_types)["overall"]
        topk_score = hpmi_table(stats, [baseline], link_types)["overall"]
        assert oracle_score > topk_score
