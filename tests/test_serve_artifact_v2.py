"""v2 zero-copy artifacts: round trips, rejection, migration, sharing.

The acceptance invariants for ``repro.serve/model/v2``:

* an engine over the mmap-backed model answers byte-identically to one
  over the in-memory fit and to answers served over HTTP
  (property-tested, extending the v1 invariant);
* corruption anywhere — preamble, header, a binary section, truncation,
  misalignment — is rejected with a typed error, never served;
* v1 → v2 → v1 migration reproduces the original document bit for bit
  under the same manifest fingerprints;
* N processes mapping one artifact share its pages (smaps-verified)
  instead of keeping N private heap copies.
"""

import json
import os
import shutil
import subprocess
import sys
import textwrap
import urllib.parse
import urllib.request
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.errors import ConfigurationError, DataError
from repro.serve import (MODEL_SCHEMA, MODEL_SCHEMA_V2, MappedModel,
                         ModelQueryEngine, ModelServer, ServedModel,
                         load_model, load_model_v2, migrate_model,
                         model_document_from_mapped, save_model_document,
                         vocabulary_hash)
from repro.serve.artifact import _canonical_payload
from repro.serve.artifact_v2 import _ALIGN, _MAGIC, _PREAMBLE

from .test_serve_artifact import fitted  # noqa: F401 - shared fixture


@pytest.fixture(scope="module")
def pristine_v2(fitted, tmp_path_factory):  # noqa: F811
    """One v2 artifact shared read-only by this module's tests."""
    miner, result = fitted
    path = str(tmp_path_factory.mktemp("v2") / "model.rmv2")
    miner.save_model(result, path, format="v2")
    return path


@pytest.fixture
def v2_path(pristine_v2, tmp_path):
    """A private mutable copy for corruption tests."""
    path = str(tmp_path / "model.rmv2")
    shutil.copyfile(pristine_v2, path)
    return path


@pytest.fixture(scope="module")
def v2_server(fitted, pristine_v2):  # noqa: F811
    """An HTTP server whose engine is backed by the mapped artifact."""
    engine = ModelQueryEngine(load_model(pristine_v2))
    with ModelServer(engine, port=0) as srv:
        srv.start()
        yield srv


def _http_get(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


class TestManifestContract:
    def test_schema_is_v2_but_fingerprints_carry_over(self, fitted,  # noqa: F811
                                                      tmp_path):
        miner, result = fitted
        v1 = miner.save_model(result, str(tmp_path / "m.json"))
        v2 = miner.save_model(result, str(tmp_path / "m.rmv2"),
                              format="v2")
        assert v1["schema"] == MODEL_SCHEMA
        assert v2["schema"] == MODEL_SCHEMA_V2
        # Same canonical payload behind both formats: same CRC, same
        # vocabulary hash, same shape metadata.
        assert v2["payload_crc32"] == v1["payload_crc32"]
        assert v2["vocab_hash"] == v1["vocab_hash"]
        assert v2["num_topics"] == v1["num_topics"]

    def test_load_model_sniffs_the_format(self, fitted, pristine_v2,  # noqa: F811
                                          tmp_path):
        miner, result = fitted
        v1_path = str(tmp_path / "m.json")
        miner.save_model(result, v1_path)
        assert isinstance(load_model(v1_path), ServedModel)
        assert isinstance(load_model(pristine_v2), MappedModel)

    def test_unknown_format_rejected(self, fitted, tmp_path):  # noqa: F811
        miner, result = fitted
        with pytest.raises(ConfigurationError, match="format"):
            miner.save_model(result, str(tmp_path / "m.x"), format="v3")

    def test_sections_are_aligned(self, pristine_v2):
        model = load_model_v2(pristine_v2)
        try:
            assert model.sections, "artifact has no numeric sections"
            for entry in model.header["sections"]:
                assert entry["offset"] % _ALIGN == 0
        finally:
            model.close()


class TestRoundTrip:
    def test_document_reconstruction_is_exact(self, fitted,  # noqa: F811
                                              pristine_v2, tmp_path):
        """v2 sections reconstruct the canonical v1 payload bit for bit."""
        miner, result = fitted
        v1_path = str(tmp_path / "m.json")
        miner.save_model(result, v1_path)
        with open(v1_path) as handle:
            v1_document = json.load(handle)
        mapped = load_model_v2(pristine_v2)
        try:
            reconstructed = model_document_from_mapped(mapped)
        finally:
            mapped.close()
        assert reconstructed["model"] == v1_document["model"]
        crc = zlib.crc32(_canonical_payload(reconstructed["model"]))
        assert crc & 0xFFFFFFFF == \
            v1_document["manifest"]["payload_crc32"]

    def test_engine_answers_match_memory(self, fitted, pristine_v2):  # noqa: F811
        miner, result = fitted
        mapped = ModelQueryEngine(load_model(pristine_v2))
        memory = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        for topic in result.hierarchy.topics():
            notation = topic.notation
            for a, b in [
                (mapped.topic(notation, max_phrases=50, max_terms=50,
                              max_entities=50),
                 memory.topic(notation, max_phrases=50, max_terms=50,
                              max_entities=50)),
                (mapped.children(notation), memory.children(notation)),
                (mapped.top_phrases(notation, 100),
                 memory.top_phrases(notation, 100)),
            ]:
                assert json.dumps(a, sort_keys=True) == \
                    json.dumps(b, sort_keys=True)
        assert json.dumps(mapped.entity_roles("alice"), sort_keys=True) \
            == json.dumps(memory.entity_roles("alice"), sort_keys=True)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(phrases=st.integers(min_value=0, max_value=20),
           entities=st.integers(min_value=0, max_value=8),
           terms=st.integers(min_value=0, max_value=15))
    def test_topic_http_round_trip_v2(self, v2_server, fitted,  # noqa: F811
                                      phrases, entities, terms):
        """disk(v2) == memory == HTTP, property-tested over parameters."""
        miner, result = fitted
        memory = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        over_http = _http_get(
            v2_server, f"/v1/topics/o/1?phrases={phrases}"
                       f"&entities={entities}&terms={terms}")
        direct = memory.topic("o/1", max_phrases=phrases,
                              max_entities=entities, max_terms=terms)
        assert json.dumps(over_http, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=st.text(alphabet="abcdefgstuv ", min_size=0, max_size=8),
           mode=st.sampled_from(["prefix", "substring"]),
           limit=st.integers(min_value=1, max_value=20))
    def test_search_http_round_trip_v2(self, v2_server, fitted,  # noqa: F811
                                       query, mode, limit):
        miner, result = fitted
        memory = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        encoded = urllib.parse.quote(query)
        over_http = _http_get(
            v2_server, f"/v1/search?q={encoded}&mode={mode}&limit={limit}")
        direct = memory.search_phrases(query, mode=mode, limit=limit)
        assert json.dumps(over_http, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)


class TestRejection:
    def test_truncated_preamble_rejected(self, v2_path):
        with open(v2_path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(DataError, match="truncated"):
            load_model(v2_path)

    def test_header_corruption_rejected(self, v2_path):
        with open(v2_path, "r+b") as handle:
            handle.seek(_PREAMBLE.size + 5)
            byte = handle.read(1)
            handle.seek(_PREAMBLE.size + 5)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(DataError, match="header checksum"):
            load_model(v2_path)

    def test_section_corruption_rejected(self, v2_path):
        model = load_model_v2(v2_path)
        entry = model.header["sections"][0]
        offset = entry["offset"]
        model.close()
        with open(v2_path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(DataError,
                           match=f"section {entry['name']!r} checksum"):
            load_model(v2_path)

    def test_section_corruption_slips_without_sweep(self, v2_path):
        """verify_sections=False skips the sweep — documented tradeoff."""
        model = load_model_v2(v2_path)
        offset = model.header["sections"][0]["offset"]
        model.close()
        with open(v2_path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"\xff")
        model = load_model(v2_path, verify_sections=False)
        assert isinstance(model, MappedModel)
        model.close()

    def test_truncated_sections_rejected(self, v2_path):
        size = os.path.getsize(v2_path)
        with open(v2_path, "r+b") as handle:
            handle.truncate(size - 64)
        with pytest.raises(DataError, match="extends past EOF"):
            load_model(v2_path)

    def test_misaligned_section_rejected(self, v2_path):
        # Rewrite the header with a deliberately misaligned offset and a
        # *valid* header CRC: the alignment check itself must fire.
        with open(v2_path, "rb") as handle:
            blob = bytearray(handle.read())
        _, header_len, _ = _PREAMBLE.unpack_from(blob, 0)
        header = json.loads(
            blob[_PREAMBLE.size:_PREAMBLE.size + header_len].decode())
        header["sections"][0]["offset"] += 1
        new_header = json.dumps(header, sort_keys=True,
                                separators=(",", ":")).encode()
        assert len(new_header) == header_len, \
            "offset bump changed header length; pick another section"
        rebuilt = bytearray()
        rebuilt += _PREAMBLE.pack(_MAGIC, len(new_header),
                                  zlib.crc32(new_header) & 0xFFFFFFFF)
        rebuilt += new_header
        rebuilt += blob[_PREAMBLE.size + header_len:]
        with open(v2_path, "wb") as handle:
            handle.write(rebuilt)
        with pytest.raises(DataError, match="misaligned"):
            load_model(v2_path)

    def test_vocab_hash_mismatch_rejected(self, v2_path):
        with open(v2_path, "rb") as handle:
            blob = bytearray(handle.read())
        _, header_len, _ = _PREAMBLE.unpack_from(blob, 0)
        header = json.loads(
            blob[_PREAMBLE.size:_PREAMBLE.size + header_len].decode())
        header["manifest"]["vocab_hash"] = "sha256:" + "0" * 64
        new_header = json.dumps(header, sort_keys=True,
                                separators=(",", ":")).encode()
        rebuilt = _PREAMBLE.pack(_MAGIC, len(new_header),
                                 zlib.crc32(new_header) & 0xFFFFFFFF) \
            + new_header + bytes(blob[_PREAMBLE.size + header_len:])
        with open(v2_path, "wb") as handle:
            handle.write(rebuilt)
        with pytest.raises(DataError, match="vocabulary hash mismatch"):
            load_model(v2_path)

    def test_nan_payload_rejected_at_save_time(self, fitted,  # noqa: F811
                                               tmp_path):
        """Satellite regression: non-finite floats fail the save, typed."""
        miner, result = fitted
        v1_path = str(tmp_path / "m.json")
        miner.save_model(result, v1_path)
        with open(v1_path) as handle:
            document = json.load(handle)
        document["model"]["hierarchy"]["rho"] = float("nan")
        with pytest.raises(DataError, match="non-finite"):
            save_model_document(document, str(tmp_path / "m.rmv2"),
                                format="v2")


class TestMigration:
    def test_v1_to_v2_to_v1_is_lossless(self, fitted, tmp_path):  # noqa: F811
        miner, result = fitted
        v1_path = str(tmp_path / "a.json")
        v2_path = str(tmp_path / "b.rmv2")
        back_path = str(tmp_path / "c.json")
        original = miner.save_model(result, v1_path)
        forward = migrate_model(v1_path, v2_path, format="v2")
        assert forward["schema"] == MODEL_SCHEMA_V2
        backward = migrate_model(v2_path, back_path, format="v1")
        assert backward["schema"] == MODEL_SCHEMA
        with open(v1_path) as handle:
            before = json.load(handle)
        with open(back_path) as handle:
            after = json.load(handle)
        assert before["model"] == after["model"]
        assert before["manifest"] == after["manifest"]
        assert original["payload_crc32"] == forward["payload_crc32"] \
            == backward["payload_crc32"]

    def test_migrated_artifact_answers_identically(self, fitted,  # noqa: F811
                                                   tmp_path):
        miner, result = fitted
        v1_path = str(tmp_path / "a.json")
        v2_path = str(tmp_path / "b.rmv2")
        miner.save_model(result, v1_path)
        migrate_model(v1_path, v2_path, format="v2")
        from_v1 = ModelQueryEngine(load_model(v1_path))
        from_v2 = ModelQueryEngine(load_model(v2_path))
        for notation in [t.notation for t in result.hierarchy.topics()]:
            assert json.dumps(from_v1.topic(notation), sort_keys=True) \
                == json.dumps(from_v2.topic(notation), sort_keys=True)


_SMAPS_PROBE = textwrap.dedent("""\
    import json, sys
    from repro.serve import load_model_v2

    path = sys.argv[1]
    model = load_model_v2(path, verify_sections=False)
    # Touch every numeric page so the mapping is fully resident.
    touched = sum(float(section.sum()) for section in
                  model.sections.values())
    stats = {"mapped_bytes": model.nbytes_mapped(), "touched": touched}
    fields = {"Rss": 0, "Pss": 0, "Private_Dirty": 0, "Private_Clean": 0,
              "Shared_Clean": 0}
    inside = False
    with open("/proc/self/smaps") as smaps:
        for line in smaps:
            if path in line:
                inside = True
                continue
            if inside:
                parts = line.split()
                key = parts[0].rstrip(":")
                if key in fields:
                    fields[key] += int(parts[1])   # kB
                elif "-" in parts[0] and len(parts) >= 5:
                    inside = False                 # next VMA header
    stats.update({k.lower() + "_kb": v for k, v in fields.items()})
    print(json.dumps(stats))
    sys.stdout.flush()
    if len(sys.argv) > 2 and sys.argv[2] == "hold":
        sys.stdin.readline()                       # parent releases us
""")


@pytest.mark.skipif(not os.path.exists("/proc/self/smaps"),
                    reason="needs Linux smaps accounting")
class TestPageSharing:
    """mmap'd loads must share pages across processes (tentpole claim)."""

    def _spawn(self, path, hold=False):
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        args = [sys.executable, "-c", _SMAPS_PROBE, path]
        if hold:
            args.append("hold")
        return subprocess.Popen(args, env=env, stdin=subprocess.PIPE,
                                stdout=subprocess.PIPE, text=True)

    def test_mapping_is_file_backed_not_private(self, pristine_v2):
        proc = self._spawn(pristine_v2)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        stats = json.loads(out.splitlines()[0])
        assert stats["mapped_bytes"] > 0
        # Reading zero-copy views must dirty (essentially) nothing: the
        # numeric data stays on file-backed clean pages.  Allow a small
        # bound for page-table noise.
        assert stats["private_dirty_kb"] <= 16, stats
        # ...and the mapping really was touched into residency.
        assert stats["rss_kb"] * 1024 >= stats["mapped_bytes"] // 2, stats

    def test_two_processes_share_one_copy(self, pristine_v2):
        """With a second mapper alive, Pss ~ Rss/2: one shared copy."""
        holder = self._spawn(pristine_v2, hold=True)
        try:
            first = json.loads(holder.stdout.readline())
            assert first["mapped_bytes"] > 0
            probe = self._spawn(pristine_v2)
            out, _ = probe.communicate(timeout=60)
            assert probe.returncode == 0, out
            stats = json.loads(out.splitlines()[0])
            # The artifact's pages are counted in both processes' Rss
            # but split in Pss — the kernel is sharing one physical
            # copy.  Require a visible reduction (strictly < 100%, with
            # margin) rather than exactly half to stay robust.
            assert stats["rss_kb"] > 0
            assert stats["pss_kb"] <= stats["rss_kb"] * 3 // 4, stats
            assert stats["private_dirty_kb"] <= 16, stats
        finally:
            if holder.stdin is not None:
                holder.stdin.close()
            holder.wait(timeout=30)
