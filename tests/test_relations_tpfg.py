"""Tests for TPFG inference and the relation baselines (Section 6.1)."""

import pytest

from repro.relations import (Candidate, CandidateGraph, CollaborationNetwork,
                             IndMaxBaseline, ROOT, RuleBaseline, TPFG,
                             build_candidate_graph, evaluate_predictions,
                             precision_at)


def manual_graph():
    """Hand-built conflict case.

    'senior' is advised by 'prof' until 2002 (estimated).  'junior'
    starts in 2000 and collaborates with both; its local likelihood
    slightly prefers 'senior' — but choosing senior conflicts with
    senior's own (strongly preferred) advisor because 2002 >= 2000.
    TPFG must override the local preference; IndMAX must not.
    """
    graph = CandidateGraph()
    graph.candidates["senior"] = [
        Candidate("senior", "prof", 1995, 2002, 0.8),
        Candidate("senior", ROOT, 1995, 2005, 0.2),
    ]
    graph.candidates["junior"] = [
        Candidate("junior", "senior", 2000, 2004, 0.45),
        Candidate("junior", "prof", 2000, 2004, 0.40),
        Candidate("junior", ROOT, 2000, 2005, 0.15),
    ]
    graph.candidates["prof"] = [Candidate("prof", ROOT, 1990, 2005, 1.0)]
    return graph


class TestTPFGInference:
    def test_constraint_overrides_local_preference(self):
        result = TPFG(max_iter=10).fit(manual_graph())
        assert result.predicted_advisor("junior") == "prof"

    def test_indmax_follows_local_preference(self):
        result = IndMaxBaseline().predict(manual_graph())
        assert result.predicted_advisor("junior") == "senior"

    def test_senior_keeps_its_advisor(self):
        result = TPFG(max_iter=10).fit(manual_graph())
        assert result.predicted_advisor("senior") == "prof"

    def test_ranking_scores_normalized(self):
        result = TPFG(max_iter=10).fit(manual_graph())
        for author in ("junior", "senior", "prof"):
            total = sum(s for _, s in result.ranking[author])
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_root_only_author_predicts_none(self):
        result = TPFG(max_iter=10).fit(manual_graph())
        assert result.predicted_advisor("prof") is None

    def test_score_lookup(self):
        result = TPFG(max_iter=10).fit(manual_graph())
        assert result.score("junior", "prof") > 0
        assert result.score("junior", "stranger") == 0.0

    def test_damping_converges_to_same_answer(self):
        plain = TPFG(max_iter=20).fit(manual_graph())
        damped = TPFG(max_iter=20, damping=0.3).fit(manual_graph())
        assert plain.predicted_advisor("junior") == \
            damped.predicted_advisor("junior")


class TestOnSyntheticData:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.datasets import DBLPConfig, generate_dblp
        dataset = generate_dblp(DBLPConfig(max_authors=250), seed=7)
        network = CollaborationNetwork.from_corpus(dataset.corpus)
        graph = build_candidate_graph(network)
        truth = {r.advisee: r.advisor
                 for r in dataset.ground_truth.advising}
        for author in network.authors:
            truth.setdefault(author, None)
        return network, graph, truth

    def test_tpfg_beats_chance_by_far(self, setup):
        _, graph, truth = setup
        result = TPFG(max_iter=15).fit(graph)
        accuracy = evaluate_predictions(result.predictions(), truth)
        assert accuracy.advisee_accuracy > 0.6

    def test_tpfg_at_least_matches_indmax(self, setup):
        _, graph, truth = setup
        tpfg = evaluate_predictions(
            TPFG(max_iter=15).fit(graph).predictions(), truth)
        indmax = evaluate_predictions(
            IndMaxBaseline().predict(graph).predictions(), truth)
        assert tpfg.advisee_accuracy >= indmax.advisee_accuracy - 1e-9

    def test_rule_baseline_runs(self, setup):
        network, _, truth = setup
        predictions = RuleBaseline().predict(network)
        accuracy = evaluate_predictions(predictions, truth)
        assert 0.3 < accuracy.advisee_accuracy < 1.0

    def test_precision_at_k_increases_with_k(self, setup):
        _, graph, truth = setup
        result = TPFG(max_iter=15).fit(graph)
        p1 = precision_at(result, truth, top_k=1).advisee_accuracy
        p2 = precision_at(result, truth, top_k=2).advisee_accuracy
        p3 = precision_at(result, truth, top_k=3).advisee_accuracy
        assert p1 <= p2 <= p3

    def test_root_authors_mostly_unassigned(self, setup):
        _, graph, truth = setup
        result = TPFG(max_iter=15).fit(graph)
        accuracy = evaluate_predictions(result.predictions(), truth)
        assert accuracy.root_accuracy > 0.8


class TestMetrics:
    def test_evaluate_counts(self):
        truth = {"a": "x", "b": None, "c": "y"}
        predictions = {"a": "x", "b": None, "c": "z"}
        accuracy = evaluate_predictions(predictions, truth)
        assert accuracy.num_advisees == 2
        assert accuracy.num_roots == 1
        assert accuracy.advisee_accuracy == pytest.approx(0.5)
        assert accuracy.root_accuracy == pytest.approx(1.0)
        assert accuracy.accuracy == pytest.approx(2 / 3)

    def test_missing_prediction_counts_as_none(self):
        accuracy = evaluate_predictions({}, {"a": "x", "b": None})
        assert accuracy.advisee_accuracy == 0.0
        assert accuracy.root_accuracy == 1.0
