"""End-to-end integration and determinism tests."""

import numpy as np
import pytest

from repro.core import LatentEntityMiner, MinerConfig
from repro.datasets import NewsConfig, generate_news
from repro.eval import (CooccurrenceStatistics, LabelAffinity,
                        generate_intrusion_questions, hpmi_table,
                        hierarchy_phrase_groups, run_intrusion_task)
from repro.network import TERM_TYPE


class TestDeterminism:
    def test_miner_is_seed_deterministic(self, dblp_small):
        results = []
        for _ in range(2):
            miner = LatentEntityMiner(
                MinerConfig(num_children=3, max_depth=1), seed=42)
            results.append(miner.fit(dblp_small.corpus))
        a, b = results
        for topic_a, topic_b in zip(a.hierarchy.topics(),
                                    b.hierarchy.topics()):
            assert topic_a.phrases == topic_b.phrases
            assert topic_a.entity_ranks == topic_b.entity_ranks

    def test_different_seeds_can_differ(self, dblp_small):
        miners = [LatentEntityMiner(
            MinerConfig(num_children=3, max_depth=1), seed=s)
            for s in (0, 123)]
        hierarchies = [m.fit(dblp_small.corpus).hierarchy
                       for m in miners]
        # Same corpus, different EM initializations: topic order or
        # content may differ (both are valid local optima).
        first = [t.top_phrases(5) for t in hierarchies[0].topics()]
        second = [t.top_phrases(5) for t in hierarchies[1].topics()]
        assert first != second or first == second  # no crash either way

    def test_relations_deterministic(self, dblp_small):
        from repro.relations import (CollaborationNetwork, TPFG,
                                     build_candidate_graph)
        network = CollaborationNetwork.from_corpus(dblp_small.corpus)
        graph = build_candidate_graph(network)
        a = TPFG(max_iter=10).fit(graph).predictions()
        b = TPFG(max_iter=10).fit(graph).predictions()
        assert a == b


class TestNewsEndToEnd:
    @pytest.fixture(scope="class")
    def news_result(self):
        dataset = generate_news(
            NewsConfig(num_stories=6, articles_per_story=60), seed=5)
        miner = LatentEntityMiner(
            MinerConfig(num_children=6, max_depth=1, min_support=4),
            seed=0)
        return dataset, miner.fit(dataset.corpus)

    def test_stories_separated(self, news_result):
        dataset, result = news_result
        stats = CooccurrenceStatistics(dataset.corpus)
        topics = [{TERM_TYPE: c.top_words(TERM_TYPE, 10),
                   "person": c.top_entities("person", 3),
                   "location": c.top_entities("location", 3)}
                  for c in result.hierarchy.root.children]
        table = hpmi_table(stats, topics,
                           [(TERM_TYPE, TERM_TYPE),
                            ("person", TERM_TYPE)],
                           top_k=10)
        assert table["overall"] > 0

    def test_phrase_intrusion_beats_chance(self, news_result):
        dataset, result = news_result
        groups = [[c.top_phrases(8)
                   for c in result.hierarchy.root.children]]
        questions = generate_intrusion_questions(groups, 30, seed=1)
        affinity = LabelAffinity(dataset.corpus)
        score = run_intrusion_task(questions, dataset.corpus,
                                   noise=0.05, seed=2,
                                   affinity=affinity)
        assert score > 0.4  # chance is 0.2 with 5 options

    def test_entity_rankings_story_pure(self, news_result):
        dataset, result = news_result
        truth = dataset.ground_truth
        pure = 0
        for child in result.hierarchy.root.children:
            people = child.top_entities("person", 3)
            stories = {truth.topic_of_entity("person", p)
                       for p in people
                       if truth.topic_of_entity("person", p) is not None}
            if len(stories) == 1:
                pure += 1
        assert pure >= 4

    def test_roles_over_flat_hierarchy(self, news_result):
        _, result = news_result
        story = result.hierarchy.root.children[0]
        ranked = result.roles.rank_entities(story.notation, "location",
                                            top_k=3)
        assert ranked
        assert all(score >= 0 or score <= 0 for _, score in ranked)


class TestCrossModuleContracts:
    def test_flat_model_currency_shared(self, dblp_small):
        """Every model family exports the same FlatTopicModel currency
        and plugs into the same rankers."""
        from repro.baselines import LDAGibbs, PLSA, VariationalLDA, \
            docs_to_count_matrix
        from repro.phrases import KERT, KERTConfig, mine_frequent_phrases
        from repro.strod import STROD

        corpus = dblp_small.corpus
        docs = [d.tokens for d in corpus]
        vocab_size = len(corpus.vocabulary)
        counts = mine_frequent_phrases(corpus, min_support=5)
        models = [
            LDAGibbs(num_topics=4, iterations=5,
                     seed=0).fit(docs, vocab_size).to_flat(),
            PLSA(num_topics=4, max_iter=10, seed=0).fit(
                docs_to_count_matrix(docs, vocab_size)).to_flat(),
            VariationalLDA(num_topics=4, em_iterations=3,
                           seed=0).fit(docs, vocab_size).to_flat(),
            STROD(num_topics=4, alpha0=1.0,
                  seed=0).fit(docs, vocab_size).to_flat(),
        ]
        kert = KERT(KERTConfig(min_support=5))
        for model in models:
            ranked = kert.rank_strings(corpus, model, counts=counts,
                                       top_k=3)
            assert len(ranked) == 4
