"""Tests of the paper's stated theoretical properties (Section 3.2.2)."""

import numpy as np
import pytest

from repro.cathy import CathyHIN
from repro.corpus import Corpus
from repro.network import HeterogeneousNetwork, build_collapsed_network


def _scaled_network(network: HeterogeneousNetwork,
                    factor: float) -> HeterogeneousNetwork:
    scaled = HeterogeneousNetwork()
    for node_type in network.node_types():
        for name in network.node_names(node_type):
            scaled.add_node(node_type, name)
    for link_type in network.link_types():
        type_x, type_y = link_type
        for i, j, weight in network.links(link_type):
            scaled.add_link(type_x, i, type_y, j, weight * factor)
    return scaled


@pytest.fixture(scope="module")
def network():
    texts = (["red green blue"] * 8) + (["cat dog bird"] * 8)
    entities = ([{"venue": ["COLOR"]}] * 8 + [{"venue": ["ANIMAL"]}] * 8)
    corpus = Corpus.from_texts(texts, entities=entities)
    return build_collapsed_network(corpus)


class TestLemma31ScaleInvariance:
    """Lemma 3.1: the EM solution is invariant to a constant scale-up of
    all link weights."""

    def test_phi_and_rho_invariant_under_scaling(self, network):
        base = CathyHIN(num_topics=2, max_iter=60, seed=0).fit(network)
        scaled = CathyHIN(num_topics=2, max_iter=60, seed=0).fit(
            _scaled_network(network, 3.0))
        # Same seed -> same initialization -> identical trajectories.
        for node_type in base.phi:
            assert np.allclose(base.phi[node_type],
                               scaled.phi[node_type], atol=1e-8)
        assert np.allclose(base.rho, scaled.rho, atol=1e-8)
        assert base.rho0 == pytest.approx(scaled.rho0, abs=1e-8)

    def test_non_integer_weights_accepted(self, network):
        model = CathyHIN(num_topics=2, max_iter=30, seed=0).fit(
            _scaled_network(network, 0.37))
        for node_type, phi in model.phi.items():
            assert np.allclose(phi.sum(axis=1), 1.0, atol=1e-6)


class TestTheorem32WeightNormalization:
    """Theorem 3.2: any positive weight vector has an equivalent one
    satisfying the product constraint, so learned alphas are reported in
    that normalized form."""

    def test_explicit_alpha_scaling_equivalence(self, network):
        alpha = {lt: 2.0 for lt in network.link_types()}
        doubled = CathyHIN(num_topics=2, weight_mode=alpha, max_iter=60,
                           seed=0).fit(network)
        unit = CathyHIN(num_topics=2, weight_mode="equal", max_iter=60,
                        seed=0).fit(network)
        # alpha = 2 for every type is a constant scale-up: Lemma 3.1
        # applies and the solutions coincide.
        for node_type in unit.phi:
            assert np.allclose(unit.phi[node_type],
                               doubled.phi[node_type], atol=1e-8)

    def test_learned_alpha_product_constraint(self, network):
        model = CathyHIN(num_topics=2, weight_mode="learn", max_iter=60,
                         seed=0).fit(network)
        log_product = sum(
            network.num_links(lt) * np.log(model.alpha[lt])
            for lt in network.link_types())
        assert log_product == pytest.approx(0.0, abs=1e-6)


class TestTheorem31EquivalentSolutions:
    """Theorem 3.1: the collapsed-model updates are an EM algorithm —
    so the observed-data likelihood is monotone under them."""

    def test_monotone_likelihood(self, network):
        values = []
        for iterations in (1, 5, 20, 60):
            model = CathyHIN(num_topics=2, max_iter=iterations,
                             seed=4).fit(network)
            values.append(model.log_likelihood)
        assert all(b >= a - 1e-8 for a, b in zip(values, values[1:]))
