"""Tests for dataset persistence."""

import json

import pytest

from repro.datasets import (dataset_from_dict, dataset_to_dict,
                            load_dataset, save_dataset)
from repro.errors import DataError


class TestRoundtrip:
    def test_dict_roundtrip_preserves_corpus(self, dblp_small):
        restored = dataset_from_dict(dataset_to_dict(dblp_small))
        assert len(restored.corpus) == len(dblp_small.corpus)
        assert list(restored.corpus.vocabulary) == \
            list(dblp_small.corpus.vocabulary)
        for original, copy in zip(dblp_small.corpus, restored.corpus):
            assert original.chunks == copy.chunks
            assert original.entities == copy.entities
            assert original.year == copy.year
            assert original.label == copy.label

    def test_dict_roundtrip_preserves_ground_truth(self, dblp_small):
        restored = dataset_from_dict(dataset_to_dict(dblp_small))
        truth_a = dblp_small.ground_truth
        truth_b = restored.ground_truth
        assert truth_a.doc_topic_paths == truth_b.doc_topic_paths
        assert truth_a.entity_topics == truth_b.entity_topics
        assert len(truth_a.advising) == len(truth_b.advising)
        assert truth_a.hierarchy.name == truth_b.hierarchy.name
        leaf_a = sorted(p for p, s in truth_a.paths.items()
                        if not s.children)
        leaf_b = sorted(p for p, s in truth_b.paths.items()
                        if not s.children)
        assert leaf_a == leaf_b

    def test_file_roundtrip(self, dblp_small, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(dblp_small, str(path))
        restored = load_dataset(str(path))
        assert restored.name == dblp_small.name
        assert len(restored.corpus) == len(dblp_small.corpus)

    def test_serialized_form_is_json(self, dblp_small, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(dblp_small, str(path))
        with open(path) as handle:
            data = json.load(handle)
        assert data["version"] == 1

    def test_unknown_version_rejected(self, dblp_small):
        data = dataset_to_dict(dblp_small)
        data["version"] = 99
        with pytest.raises(DataError):
            dataset_from_dict(data)

    def test_restored_dataset_is_usable(self, dblp_small):
        from repro.network import build_collapsed_network
        restored = dataset_from_dict(dataset_to_dict(dblp_small))
        network = build_collapsed_network(restored.corpus)
        assert network.num_links() > 0
