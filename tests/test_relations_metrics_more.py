"""Additional tests for relation metrics and the P@(k, theta) rule."""

import pytest

from repro.relations import (Candidate, CandidateGraph, ROOT, TPFGResult,
                             evaluate_predictions, precision_at)


def make_result(ranking):
    return TPFGResult(ranking=ranking)


class TestPredictionRule:
    def test_root_dominance_blocks_prediction(self):
        result = make_result({"x": [(ROOT, 0.6), ("a", 0.4)]})
        assert result.predicted_advisor("x") is None

    def test_theta_admits_confident_candidate(self):
        # Root outranks, but the candidate clears the theta bar.
        result = make_result({"x": [(ROOT, 0.45), ("a", 0.42)]})
        assert result.predicted_advisor("x", theta=0.4) == "a"
        assert result.predicted_advisor("x", theta=0.5) is None

    def test_top_k_window(self):
        result = make_result({
            "x": [("a", 0.5), ("b", 0.3), (ROOT, 0.2)]})
        assert result.predicted_advisor("x", top_k=1) == "a"
        # b is within the top-2 and above root: eligible under k=2 but a
        # still wins (first in ranking order).
        assert result.predicted_advisor("x", top_k=2) == "a"

    def test_unknown_author(self):
        result = make_result({})
        assert result.predicted_advisor("ghost") is None
        assert result.score("ghost", "anyone") == 0.0


class TestPrecisionAt:
    @pytest.fixture
    def result(self):
        return make_result({
            "x": [("wrong", 0.5), ("right", 0.3), (ROOT, 0.2)],
            "y": [("right2", 0.9), (ROOT, 0.1)],
            "z": [(ROOT, 0.9), ("noise", 0.1)],
        })

    def test_k1_misses_second_ranked_truth(self, result):
        truth = {"x": "right", "y": "right2", "z": None}
        accuracy = precision_at(result, truth, top_k=1)
        assert accuracy.advisee_accuracy == pytest.approx(0.5)
        assert accuracy.root_accuracy == 1.0

    def test_k2_recovers_it(self, result):
        truth = {"x": "right", "y": "right2", "z": None}
        accuracy = precision_at(result, truth, top_k=2)
        assert accuracy.advisee_accuracy == pytest.approx(1.0)

    def test_theta_gates_low_scores(self, result):
        truth = {"x": "right"}
        strict = precision_at(result, truth, top_k=2, theta=0.95)
        # right has score 0.3 < root? root is 0.2 so 0.3 > root passes
        # regardless of theta (the or-condition).
        assert strict.advisee_accuracy == pytest.approx(1.0)

    def test_empty_truth(self, result):
        accuracy = precision_at(result, {}, top_k=1)
        assert accuracy.accuracy == 0.0


class TestEvaluateEdgeCases:
    def test_all_roots(self):
        accuracy = evaluate_predictions({"a": None}, {"a": None})
        assert accuracy.accuracy == 1.0
        assert accuracy.advisee_accuracy == 0.0
        assert accuracy.num_advisees == 0

    def test_wrong_advisor_counts_once(self):
        accuracy = evaluate_predictions({"a": "x"}, {"a": "y"})
        assert accuracy.accuracy == 0.0
        assert accuracy.num_advisees == 1
