"""Property tests: the CSR network backbone vs per-edge dict bookkeeping.

Hypothesis drives random typed edge lists through three builds — the
pre-CSR reference (:class:`ReferenceDictNetwork`), the per-edge
``add_link`` path, and the bulk ``add_links`` path — and asserts they
agree on every aggregate solvers consume: total weights, per-node
degree vectors, stored link dicts, and Eq. 3.23 subnetwork splits.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network import HeterogeneousNetwork
from .reference_kernels import ReferenceDictNetwork

NODE_TYPES = ("author", "term")
NUM_NODES = 5

edge_lists = st.lists(
    st.tuples(st.sampled_from(NODE_TYPES),
              st.integers(min_value=0, max_value=NUM_NODES - 1),
              st.sampled_from(NODE_TYPES),
              st.integers(min_value=0, max_value=NUM_NODES - 1),
              st.floats(min_value=0.0, max_value=8.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=0, max_size=40)


def _typed_network():
    network = HeterogeneousNetwork(NODE_TYPES)
    for node_type in NODE_TYPES:
        network.add_nodes(node_type,
                          [f"{node_type}{n}" for n in range(NUM_NODES)])
    return network


def _build_all(edges):
    """(reference, per-edge CSR network, bulk CSR network) from one list."""
    reference = ReferenceDictNetwork()
    per_edge = _typed_network()
    bulk = _typed_network()
    by_type = {}
    for type_x, i, type_y, j, weight in edges:
        reference.add_link(type_x, i, type_y, j, weight)
        per_edge.add_link(type_x, i, type_y, j, weight)
        by_type.setdefault((type_x, type_y), []).append((i, j, weight))
    for (type_x, type_y), rows in by_type.items():
        i_idx, j_idx, weights = (np.asarray(col) for col in zip(*rows))
        bulk.add_links(type_x, i_idx, type_y, j_idx, weights)
    return reference, per_edge, bulk


class TestDictVsCsrAgreement:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_total_weight_and_link_dicts(self, edges):
        reference, per_edge, bulk = _build_all(edges)
        link_types = set(reference.links)
        for network in (per_edge, bulk):
            assert set(network.link_types()) <= link_types
            for link_type in link_types:
                assert network.total_weight(link_type) == pytest.approx(
                    reference.total_weight(link_type), rel=1e-12, abs=1e-12)
                stored = network.link_dict(link_type)
                expected = {k: w for k, w in
                            reference.links[link_type].items() if w != 0}
                assert set(stored) <= set(reference.links[link_type])
                for key, weight in expected.items():
                    assert stored.get(key, 0.0) == pytest.approx(
                        weight, rel=1e-12, abs=1e-12)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_degree_vectors(self, edges):
        reference, per_edge, bulk = _build_all(edges)
        for network in (per_edge, bulk):
            for node_type in NODE_TYPES:
                degrees = network.degree_vector(node_type)
                assert len(degrees) == NUM_NODES
                for node in range(NUM_NODES):
                    assert degrees[node] == pytest.approx(
                        reference.degree(node_type, node),
                        rel=1e-12, abs=1e-12)

    @given(edge_lists,
           st.floats(min_value=0.5, max_value=6.0, allow_nan=False))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_subnetwork_splits(self, edges, min_weight):
        """Both the mapping and the array-triple subnetwork paths keep
        exactly the links the reference split keeps, by node name."""
        reference, per_edge, _ = _build_all(edges)
        kept = reference.subnetwork_links(reference.links, min_weight)

        mapping_form = {lt: per_edge.link_dict(lt)
                        for lt in per_edge.link_types()}
        array_form = {lt: per_edge.link_arrays(lt)
                      for lt in per_edge.link_types()}
        for form in (mapping_form, array_form):
            child = per_edge.subnetwork(form, min_weight=min_weight)
            observed = set()
            for link_type in child.link_types():
                type_x, type_y = link_type
                names_x = child.node_names(type_x)
                names_y = child.node_names(type_y)
                for i, j, weight in child.links(link_type):
                    # Same-type links are undirected; the child's node
                    # re-indexing may flip the stored endpoint order.
                    pair = frozenset if type_x == type_y else tuple
                    observed.add((link_type, pair((names_x[i], names_y[j])),
                                  round(weight, 9)))
            expected = set()
            for link_type, bucket in kept.items():
                pair = frozenset if link_type[0] == link_type[1] else tuple
                for (i, j), weight in bucket.items():
                    expected.add((link_type,
                                  pair((f"{link_type[0]}{i}",
                                        f"{link_type[1]}{j}")),
                                  round(weight, 9)))
            assert observed == expected

    @given(edge_lists)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_per_edge_and_bulk_builds_identical(self, edges):
        """add_link and add_links are two routes to one frozen store."""
        _, per_edge, bulk = _build_all(edges)
        assert per_edge.link_types() == bulk.link_types()
        for link_type in per_edge.link_types():
            a_i, a_j, a_w = per_edge.link_arrays(link_type)
            b_i, b_j, b_w = bulk.link_arrays(link_type)
            assert (a_i == b_i).all() and (a_j == b_j).all()
            np.testing.assert_allclose(a_w, b_w, rtol=1e-12, atol=1e-12)
