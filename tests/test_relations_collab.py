"""Tests for the temporal collaboration network (Section 6.1.1)."""

import pytest

from repro.errors import DataError
from repro.relations import CollaborationNetwork, YearSeries


class TestYearSeries:
    def test_add_and_cumulative(self):
        series = YearSeries()
        series.add(2000, 2)
        series.add(2002)
        assert series.cumulative(2000) == 2
        assert series.cumulative(2001) == 2
        assert series.cumulative(2002) == 3

    def test_first_last_year(self):
        series = YearSeries({2001: 1, 1999: 3})
        assert series.first_year == 1999
        assert series.last_year == 2001

    def test_empty_series(self):
        series = YearSeries()
        assert series.first_year is None
        assert series.total() == 0


class TestCollaborationNetwork:
    @pytest.fixture
    def network(self):
        return CollaborationNetwork.from_papers([
            (["ada", "bob"], 2000),
            (["ada", "bob"], 2001),
            (["ada"], 1995),
            (["bob", "carl"], 2002),
        ])

    def test_author_series(self, network):
        assert network.series_of("ada").total() == 3
        assert network.series_of("ada").first_year == 1995
        assert network.series_of("bob").first_year == 2000

    def test_pair_series_unordered(self, network):
        assert network.pair("ada", "bob").total() == 2
        assert network.pair("bob", "ada").total() == 2
        assert network.pair("ada", "carl") is None

    def test_coauthors(self, network):
        assert network.coauthors("bob") == ["ada", "carl"]

    def test_duplicate_authors_on_paper_deduplicated(self):
        network = CollaborationNetwork.from_papers([
            (["x", "x", "y"], 2000)])
        assert network.series_of("x").total() == 1
        assert network.pair("x", "y").total() == 1

    def test_unknown_author_raises(self, network):
        with pytest.raises(DataError):
            network.series_of("nobody")

    def test_from_corpus_requires_years(self, tiny_corpus):
        network = CollaborationNetwork.from_corpus(tiny_corpus)
        assert "alice" in network.authors

    def test_from_corpus_missing_year_raises(self):
        from repro.corpus import Corpus
        corpus = Corpus.from_texts(["alpha"],
                                   entities=[{"author": ["a"]}])
        with pytest.raises(DataError):
            CollaborationNetwork.from_corpus(corpus)
