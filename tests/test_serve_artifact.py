"""Model-artifact round trips and corruption rejection (repro.serve)."""

import json

import pytest

from repro import get_version
from repro.core import LatentEntityMiner, MinerConfig
from repro.corpus import Corpus
from repro.errors import DataError
from repro.serve import (MODEL_SCHEMA, ModelQueryEngine, ServedModel,
                         load_model, save_model, vocabulary_hash)

from .conftest import TINY_ENTITIES, TINY_LABELS, TINY_TEXTS
from .faults import truncate_file


@pytest.fixture(scope="module")
def fitted():
    """A fitted tiny-corpus pipeline shared by the serve suites."""
    corpus = Corpus.from_texts(TINY_TEXTS, entities=TINY_ENTITIES,
                               labels=TINY_LABELS)
    miner = LatentEntityMiner(
        MinerConfig(num_children=2, max_depth=1, min_support=2), seed=0)
    return miner, miner.fit(corpus)


@pytest.fixture
def artifact_path(fitted, tmp_path):
    miner, result = fitted
    path = str(tmp_path / "model.json")
    miner.save_model(result, path)
    return path


class TestManifest:
    def test_save_returns_manifest(self, fitted, tmp_path):
        miner, result = fitted
        manifest = miner.save_model(result, str(tmp_path / "m.json"))
        assert manifest["schema"] == MODEL_SCHEMA
        assert manifest["num_topics"] == result.hierarchy.num_topics
        assert manifest["num_documents"] == len(result.corpus)
        assert manifest["entity_types"] == ["author", "venue"]

    def test_version_stamped(self, fitted, tmp_path):
        miner, result = fitted
        manifest = miner.save_model(result, str(tmp_path / "m.json"))
        assert manifest["repro_version"] == get_version()

    def test_config_fingerprint_recorded(self, fitted, tmp_path):
        miner, result = fitted
        manifest = miner.save_model(result, str(tmp_path / "m.json"))
        assert manifest["config"]["num_children"] == 2
        assert manifest["config"]["max_depth"] == 1

    def test_vocab_hash_matches_corpus(self, fitted, artifact_path):
        _, result = fitted
        model = load_model(artifact_path)
        assert model.manifest["vocab_hash"] == \
            vocabulary_hash(result.corpus.vocabulary)

    def test_vocab_hash_is_order_sensitive(self):
        assert vocabulary_hash(["a", "b"]) != vocabulary_hash(["b", "a"])


class TestRoundTrip:
    def test_hierarchy_reconstructed(self, fitted, artifact_path):
        _, result = fitted
        model = load_model(artifact_path)
        hierarchy = model.hierarchy()
        assert hierarchy.num_topics == result.hierarchy.num_topics
        for topic in hierarchy.topics():
            original = result.hierarchy.topic(topic.path)
            assert topic.notation == original.notation
            assert [p for p, _ in topic.phrases] == \
                [p for p, _ in original.phrases]

    def test_query_results_byte_identical(self, fitted, artifact_path):
        """Every engine answer from disk equals the in-memory answer."""
        miner, result = fitted
        from_disk = ModelQueryEngine(load_model(artifact_path))
        from_memory = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        for notation in [t.notation for t in result.hierarchy.topics()]:
            for a, b in [
                (from_disk.topic(notation), from_memory.topic(notation)),
                (from_disk.children(notation),
                 from_memory.children(notation)),
                (from_disk.top_phrases(notation, 5),
                 from_memory.top_phrases(notation, 5)),
            ]:
                assert json.dumps(a, sort_keys=True) == \
                    json.dumps(b, sort_keys=True)

    def test_double_save_identical_payload(self, fitted, tmp_path):
        miner, result = fitted
        first, second = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        miner.save_model(result, first)
        miner.save_model(result, second)
        with open(first) as f_a, open(second) as f_b:
            doc_a, doc_b = json.load(f_a), json.load(f_b)
        assert doc_a["model"] == doc_b["model"]
        assert doc_a["manifest"]["payload_crc32"] == \
            doc_b["manifest"]["payload_crc32"]

    def test_from_result_equals_loaded(self, fitted, artifact_path):
        miner, result = fitted
        in_memory = ServedModel.from_result(
            result, config=miner._artifact_config())
        on_disk = load_model(artifact_path)
        assert in_memory.model == on_disk.model


class TestRejection:
    def test_truncated_file_rejected(self, artifact_path):
        truncate_file(artifact_path, 200)
        with pytest.raises(DataError, match="truncated|not JSON|missing"):
            load_model(artifact_path)

    def test_not_json_rejected(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            handle.write("this is not a model")
        with pytest.raises(DataError, match="not a valid model artifact"):
            load_model(path)

    def test_wrong_schema_version_rejected(self, artifact_path):
        with open(artifact_path) as handle:
            document = json.load(handle)
        document["schema"] = "repro.serve/model/v999"
        with open(artifact_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(DataError, match="unsupported model schema"):
            load_model(artifact_path)

    def test_manifest_schema_mismatch_rejected(self, artifact_path):
        with open(artifact_path) as handle:
            document = json.load(handle)
        document["manifest"]["schema"] = "repro.serve/model/v0"
        with open(artifact_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(DataError, match="unsupported model schema"):
            load_model(artifact_path)

    def test_payload_corruption_rejected(self, artifact_path):
        with open(artifact_path) as handle:
            document = json.load(handle)
        document["model"]["hierarchy"]["rho"] = 0.123456789
        with open(artifact_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(DataError, match="checksum mismatch"):
            load_model(artifact_path)

    def test_vocab_hash_mismatch_rejected(self, artifact_path):
        with open(artifact_path) as handle:
            document = json.load(handle)
        document["manifest"]["vocab_hash"] = "sha256:" + "0" * 64
        with open(artifact_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(DataError, match="vocabulary hash mismatch"):
            load_model(artifact_path)

    def test_missing_manifest_field_rejected(self, artifact_path):
        with open(artifact_path) as handle:
            document = json.load(handle)
        del document["manifest"]["payload_crc32"]
        with open(artifact_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(DataError, match="missing field"):
            load_model(artifact_path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_model(str(tmp_path / "does-not-exist.json"))
