"""Tests for repro.utils."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils import (EPS, ensure_rng, is_distribution, normalize,
                         pointwise_kl, safe_log, top_k_indices,
                         weighted_sample)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng


class TestNormalize:
    def test_sums_to_one(self):
        result = normalize([1.0, 2.0, 3.0])
        assert result.sum() == pytest.approx(1.0)
        assert result[2] == pytest.approx(0.5)

    def test_zero_sum_gives_uniform(self):
        result = normalize([0.0, 0.0])
        assert np.allclose(result, [0.5, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize([1.0, -1.0])

    def test_non_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize(np.ones((2, 2)))


class TestSafeLog:
    def test_zero_is_finite(self):
        assert np.isfinite(safe_log(np.array([0.0]))).all()

    def test_matches_log_for_positive(self):
        assert safe_log(np.array([1.0]))[0] == pytest.approx(0.0)


class TestPointwiseKL:
    def test_zero_p_gives_zero(self):
        assert pointwise_kl(0.0, 0.5) == 0.0

    def test_equal_gives_zero(self):
        assert pointwise_kl(0.3, 0.3) == pytest.approx(0.0)

    def test_larger_p_positive(self):
        assert pointwise_kl(0.5, 0.1) > 0

    def test_smaller_p_negative(self):
        assert pointwise_kl(0.1, 0.5) < 0


class TestTopK:
    def test_descending_order(self):
        assert top_k_indices([0.1, 0.9, 0.5], 2) == [1, 2]

    def test_k_larger_than_length(self):
        assert len(top_k_indices([1.0, 2.0], 5)) == 2

    def test_k_zero(self):
        assert top_k_indices([1.0], 0) == []

    def test_stable_on_ties(self):
        assert top_k_indices([0.5, 0.5, 0.5], 2) == [0, 1]


class TestIsDistribution:
    def test_valid(self):
        assert is_distribution(np.array([0.5, 0.5]))

    def test_invalid_sum(self):
        assert not is_distribution(np.array([0.5, 0.6]))

    def test_negative(self):
        assert not is_distribution(np.array([1.5, -0.5]))


class TestWeightedSample:
    def test_single_sample_in_range(self):
        rng = ensure_rng(0)
        idx = weighted_sample(np.array([0.2, 0.8]), rng)
        assert idx in (0, 1)

    def test_degenerate_always_picked(self):
        rng = ensure_rng(0)
        samples = weighted_sample(np.array([0.0, 1.0]), rng, size=20)
        assert (samples == 1).all()
