"""Tests for the baseline models."""

import numpy as np
import pytest

from repro.baselines import (KpRelRanker, LDAGibbs, NetClus, PDLDA, PLSA,
                             TNG, TurboTopics, docs_to_count_matrix)
from repro.corpus import Corpus
from repro.errors import ConfigurationError, NotFittedError
from repro.phrases import mine_frequent_phrases, render_phrase


@pytest.fixture(scope="module")
def two_topic_corpus():
    texts = (["red green blue colors"] * 15
             + ["cat dog bird animals"] * 15)
    entities = ([{"venue": ["COLOR"]}] * 15 + [{"venue": ["ANIMAL"]}] * 15)
    labels = ["c"] * 15 + ["a"] * 15
    return Corpus.from_texts(texts, entities=entities, labels=labels)


class TestLDAGibbs:
    def test_separates_clean_topics(self, two_topic_corpus):
        corpus = two_topic_corpus
        lda = LDAGibbs(num_topics=2, iterations=30, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary))
        top0 = set(np.argsort(-lda.phi[0])[:4])
        top1 = set(np.argsort(-lda.phi[1])[:4])
        assert top0.isdisjoint(top1)

    def test_phi_theta_are_distributions(self, two_topic_corpus):
        corpus = two_topic_corpus
        lda = LDAGibbs(num_topics=3, iterations=10, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary))
        assert np.allclose(lda.phi.sum(axis=1), 1.0, atol=1e-9)
        assert np.allclose(lda.theta.sum(axis=1), 1.0, atol=1e-9)
        assert lda.rho.sum() == pytest.approx(1.0, abs=1e-9)

    def test_phrase_constraints_share_topics(self, two_topic_corpus):
        corpus = two_topic_corpus
        partitions = [[tuple(doc.tokens)] for doc in corpus]
        lda = LDAGibbs(num_topics=2, iterations=10, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary),
            partitions=partitions)
        assert all(len(labels) == 1 for labels in lda.assignments)

    def test_invalid_topics(self):
        with pytest.raises(ConfigurationError):
            LDAGibbs(num_topics=0)

    def test_require_model(self):
        with pytest.raises(NotFittedError):
            LDAGibbs(num_topics=2).require_model()


class TestPLSA:
    def test_separates_clean_topics(self, two_topic_corpus):
        corpus = two_topic_corpus
        counts = docs_to_count_matrix([d.tokens for d in corpus],
                                      len(corpus.vocabulary))
        model = PLSA(num_topics=2, seed=0).fit(counts)
        top0 = set(np.argsort(-model.phi[0])[:4])
        top1 = set(np.argsort(-model.phi[1])[:4])
        assert top0.isdisjoint(top1)

    def test_likelihood_monotone(self, two_topic_corpus):
        corpus = two_topic_corpus
        counts = docs_to_count_matrix([d.tokens for d in corpus],
                                      len(corpus.vocabulary))
        values = [PLSA(num_topics=2, max_iter=i, seed=3).fit(
            counts).log_likelihood for i in (1, 5, 30)]
        assert values[-1] >= values[0] - 1e-9

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            PLSA(num_topics=2).fit(np.zeros(5))

    def test_count_matrix_helper(self):
        counts = docs_to_count_matrix([[0, 0, 1]], vocab_size=3)
        assert counts.tolist() == [[2.0, 1.0, 0.0]]


class TestNetClus:
    def test_clusters_align_with_truth(self, two_topic_corpus):
        model = NetClus(num_clusters=2, seed=0).fit(two_topic_corpus)
        labels = [doc.label for doc in two_topic_corpus]
        agreement = np.mean([
            model.assignments[i] == model.assignments[0]
            if labels[i] == labels[0]
            else model.assignments[i] != model.assignments[0]
            for i in range(len(labels))])
        assert agreement > 0.9

    def test_rankings_are_distributions_after_smoothing(self,
                                                        two_topic_corpus):
        model = NetClus(num_clusters=2, smoothing=0.3,
                        seed=0).fit(two_topic_corpus)
        for node_type, ranking in model.rankings.items():
            assert np.allclose(ranking.sum(axis=1), 1.0, atol=1e-6)

    def test_top_nodes_and_distribution(self, two_topic_corpus):
        model = NetClus(num_clusters=2, seed=0).fit(two_topic_corpus)
        venues = model.top_nodes("venue", 0, 1)
        assert venues[0] in ("COLOR", "ANIMAL")
        dist = model.topic_distribution("venue", 0)
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            NetClus(num_clusters=0)
        with pytest.raises(ConfigurationError):
            NetClus(num_clusters=2, smoothing=1.5)


class TestKpRel:
    def test_favors_short_phrases(self, dblp_small):
        """The documented bias: kpRel's top list is mostly unigrams."""
        corpus = dblp_small.corpus
        lda = LDAGibbs(num_topics=6, iterations=15, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary))
        ranked = KpRelRanker().rank_strings(corpus, lda.to_flat(),
                                            top_k=10)
        unigram_fraction = np.mean([
            sum(1 for p, _ in topic if " " not in p) / max(len(topic), 1)
            for topic in ranked])
        assert unigram_fraction > 0.4

    def test_interestingness_changes_ranking(self, dblp_small):
        corpus = dblp_small.corpus
        lda = LDAGibbs(num_topics=4, iterations=15, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary))
        counts = mine_frequent_phrases(corpus, min_support=5)
        plain = KpRelRanker(interestingness=False).rank(
            corpus, lda.to_flat(), counts=counts)
        interesting = KpRelRanker(interestingness=True).rank(
            corpus, lda.to_flat(), counts=counts)
        assert any(
            [p for p, _ in plain[t][:10]] !=
            [p for p, _ in interesting[t][:10]]
            for t in range(4))


class TestPhraseTopicModels:
    def test_tng_produces_ngrams(self, two_topic_corpus):
        tng = TNG(num_topics=2, iterations=15, seed=0).fit(
            two_topic_corpus)
        rankings = tng.topical_phrases()
        assert len(rankings) == 2
        all_units = [p for topic in rankings for p, _ in topic]
        assert any(len(p) >= 2 for p in all_units)

    def test_turbo_merges_significant_pairs(self, dblp_small):
        turbo = TurboTopics(num_topics=4, iterations=10, permutations=10,
                            seed=0).fit(dblp_small.corpus)
        rankings = turbo.topical_phrases()
        merged = [p for topic in rankings for p, _ in topic if len(p) >= 2]
        assert merged  # at least some true collocations merged
        rendered = {render_phrase(p, dblp_small.corpus.vocabulary)
                    for p in merged}
        planted = set()
        for path in dblp_small.ground_truth.paths:
            planted.update(
                dblp_small.ground_truth.normalized_phrases(path))
        assert rendered & planted

    def test_pdlda_runs_and_ranks(self, two_topic_corpus):
        pdlda = PDLDA(num_topics=2, iterations=20, seed=0).fit(
            two_topic_corpus)
        rankings = pdlda.topical_phrases()
        assert len(rankings) == 2
        assert all(
            [s for _, s in topic] == sorted((s for _, s in topic),
                                            reverse=True)
            for topic in rankings)

    def test_unfitted_raise(self, two_topic_corpus):
        with pytest.raises(NotFittedError):
            TNG(num_topics=2).topical_phrases()
        with pytest.raises(NotFittedError):
            TurboTopics(num_topics=2).topical_phrases()
        with pytest.raises(NotFittedError):
            PDLDA(num_topics=2).topical_phrases()
