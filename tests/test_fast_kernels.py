"""Equivalence tests: fast kernels vs the retained reference kernels.

Every vectorized/blocked/sparse hot path must reproduce its reference
implementation from :mod:`tests.reference_kernels` — to 1e-12 for float
results, bit-identically for integer count state and RNG-consuming
draws.  These tests are the contract that lets ``bench_hotpaths.py``
honestly claim speedups: same numbers, less time.
"""

import math

import numpy as np
import pytest

from repro.baselines.lda_gibbs import ENV_REFERENCE_SWEEP, LDAGibbs
from repro.cathy.em import endpoint_one_hot, link_incidence
from repro.phrases import (make_merge_scorer, merge_significance,
                           mine_frequent_phrases_from_chunks, segment_chunk)
from .reference_kernels import (legacy_gibbs_sweep,
                                reference_gibbs_conditional,
                                reference_log_likelihood,
                                reference_scatter, reference_segment_chunk)

pytest.importorskip("scipy")


def _random_chain(rng, num_docs=20, vocab=40, doc_len=(3, 15)):
    """A small random corpus: token docs plus a phrase partition."""
    docs = [rng.integers(0, vocab, size=rng.integers(*doc_len)).tolist()
            for _ in range(num_docs)]
    partitions = []
    for doc in docs:
        parts, at = [], 0
        while at < len(doc):
            size = int(min(rng.integers(1, 4), len(doc) - at))
            parts.append(tuple(doc[at:at + size]))
            at += size
        partitions.append(parts)
    return docs, partitions


class TestGibbsKernelEquivalence:
    @pytest.mark.parametrize("phrased", [False, True])
    def test_fast_sweep_matches_reference_bitwise(self, phrased, monkeypatch):
        """Same seed, fast vs forced-reference sweep: identical chains."""
        monkeypatch.delenv("REPRO_REQUIRE_FAST_KERNELS", raising=False)
        rng = np.random.default_rng(7)
        docs, partitions = _random_chain(rng)
        kwargs = dict(num_topics=6, alpha=0.3, beta=0.05, iterations=8)

        monkeypatch.delenv(ENV_REFERENCE_SWEEP, raising=False)
        fast = LDAGibbs(seed=123, **kwargs).fit(
            docs, vocab_size=40, partitions=partitions if phrased else None)
        monkeypatch.setenv(ENV_REFERENCE_SWEEP, "1")
        ref = LDAGibbs(seed=123, **kwargs).fit(
            docs, vocab_size=40, partitions=partitions if phrased else None)

        for a, b in zip(fast.assignments, ref.assignments):
            assert (np.asarray(a) == np.asarray(b)).all()
        assert (fast.phi == ref.phi).all()
        assert (fast.theta == ref.theta).all()
        assert fast.log_likelihood == ref.log_likelihood

    def test_linear_conditional_matches_log_reference(self):
        """The fast kernel's linear-space conditional vs the log-space
        ground truth, on random count states, to 1e-12."""
        rng = np.random.default_rng(11)
        k, vocab = 7, 25
        alpha, beta = 0.2, 0.01
        beta_sum = beta * vocab
        for trial in range(30):
            n_kw = rng.integers(0, 9, size=(k, vocab)).astype(np.int64)
            n_k = n_kw.sum(axis=1)
            n_dk_row = rng.integers(0, 6, size=k).astype(np.int64)
            unit = tuple(rng.integers(0, vocab,
                                      size=rng.integers(1, 4)).tolist())
            # Replicate the fast kernel's linear-space arithmetic.
            p = n_dk_row + alpha
            for offset, w in enumerate(unit):
                p = p * (n_kw[:, w] + beta) / (n_k + beta_sum + offset)
            p = p / p.sum()
            ref = reference_gibbs_conditional(n_dk_row, n_kw, n_k, unit,
                                              alpha, beta, beta_sum)
            np.testing.assert_allclose(p, ref, rtol=1e-12, atol=1e-14)

    def test_legacy_sweep_preserves_count_invariants(self):
        """The benchmark baseline still maintains valid sampler state."""
        rng = np.random.default_rng(3)
        docs, partitions = _random_chain(rng, num_docs=8)
        k, vocab = 4, 40
        units = [[tuple(p) for p in doc] for doc in partitions]
        n_dk = np.zeros((len(units), k), dtype=np.int64)
        n_kw = np.zeros((k, vocab), dtype=np.int64)
        n_k = np.zeros(k, dtype=np.int64)
        assignments = []
        for d, doc_units in enumerate(units):
            labels = rng.integers(0, k, size=len(doc_units))
            assignments.append(labels)
            for unit, z in zip(doc_units, labels):
                n_dk[d, z] += len(unit)
                n_k[z] += len(unit)
                for w in unit:
                    n_kw[z, w] += 1
        total = int(n_k.sum())
        legacy_gibbs_sweep(units, assignments, n_dk, n_kw, n_k,
                           alpha=0.1, beta=0.01, beta_sum=0.01 * vocab,
                           rng=np.random.default_rng(99))
        assert int(n_k.sum()) == total
        assert (n_kw.sum(axis=1) == n_k).all()
        assert (n_dk.sum(axis=0) == n_k).all()
        assert (n_dk >= 0).all() and (n_kw >= 0).all()


class TestLogLikelihoodRegression:
    def test_count_based_ll_pins_loop_version(self):
        """S1: the scatter+contract ll equals the historical triple loop."""
        rng = np.random.default_rng(5)
        docs, partitions = _random_chain(rng, num_docs=15)
        units = [[tuple(p) for p in doc] for doc in partitions]
        k, vocab = 5, 40
        assignments = [rng.integers(0, k, size=len(doc_units))
                       for doc_units in units]
        phi = rng.random((k, vocab))
        phi /= phi.sum(axis=1, keepdims=True)
        fast = LDAGibbs._log_likelihood(units, assignments, phi)
        ref = reference_log_likelihood(units, assignments, phi)
        assert math.isclose(fast, ref, rel_tol=1e-12, abs_tol=1e-9)

    def test_empty_units(self):
        phi = np.full((2, 3), 0.5)
        assert LDAGibbs._log_likelihood([[]], [np.empty(0, int)], phi) == 0.0
        assert reference_log_likelihood([[]], [[]], phi) == 0.0


class TestCathySparseProducts:
    def test_incidence_product_matches_scatter(self):
        """``expected @ incidence`` (the sparse M-step) vs the add.at
        reference scatter, including duplicate and self links."""
        rng = np.random.default_rng(13)
        num_nodes, num_links, k = 30, 120, 4
        i_idx = rng.integers(0, num_nodes, size=num_links)
        j_idx = rng.integers(0, num_nodes, size=num_links)
        expected = rng.random((k, num_links))
        incidence = link_incidence(i_idx, j_idx, num_nodes)
        fast = np.asarray(expected @ incidence)
        ref = reference_scatter(expected, i_idx, j_idx, num_nodes)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-14)

    def test_endpoint_one_hot_matches_bincount(self):
        rng = np.random.default_rng(17)
        num_nodes, num_links, k = 12, 60, 3
        idx = rng.integers(0, num_nodes, size=num_links)
        expected = rng.random((k, num_links))
        one_hot = endpoint_one_hot(idx, num_nodes)
        fast = np.asarray(expected @ one_hot)
        ref = np.stack([np.bincount(idx, weights=expected[z],
                                    minlength=num_nodes)
                        for z in range(k)])
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-14)


class TestSegmentationHeapEquivalence:
    def _counts(self, chunks):
        return mine_frequent_phrases_from_chunks(
            chunks, min_support=2, max_length=5,
            num_tokens=sum(len(c) for c in chunks))

    def test_heap_matches_rescan_on_random_chunks(self):
        rng = np.random.default_rng(19)
        chunks = [rng.integers(0, 6, size=rng.integers(1, 14)).tolist()
                  for _ in range(60)]
        counts = self._counts(chunks)
        for chunk in chunks:
            assert segment_chunk(chunk, counts, alpha=1.5) == \
                reference_segment_chunk(chunk, counts, alpha=1.5)

    def test_heap_matches_rescan_with_ties(self):
        """Repeated bigrams force equal significances; the earliest
        adjacent pair must win in both implementations."""
        chunks = [[0, 1, 0, 1, 0, 1]] * 4 + [[2, 0, 1, 2]] * 3
        counts = self._counts(chunks)
        for chunk in chunks:
            assert segment_chunk(chunk, counts, alpha=0.1) == \
                reference_segment_chunk(chunk, counts, alpha=0.1)


class TestMergeScorerEquivalence:
    def test_scorer_matches_unbound_function(self):
        rng = np.random.default_rng(23)
        chunks = [rng.integers(0, 8, size=rng.integers(2, 10)).tolist()
                  for _ in range(40)]
        counts = mine_frequent_phrases_from_chunks(
            chunks, min_support=2, num_tokens=sum(len(c) for c in chunks))
        scorer = make_merge_scorer(counts)
        phrases = counts.phrases(max_length=2)
        for left in phrases[:15]:
            for right in phrases[:15]:
                counts.merge_cache.clear()
                via_scorer = scorer(left, right)
                counts.merge_cache.clear()
                via_function = merge_significance(counts, left, right)
                assert via_scorer == via_function  # bit-identical
        scorer.flush()
