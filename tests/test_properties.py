"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus import Corpus, Vocabulary
from repro.hierarchy import notation_to_path, path_to_notation
from repro.phrases import (merge_significance,
                           mine_frequent_phrases_from_chunks,
                           phrase_topic_posterior, segment_chunk)
from repro.phrases.ranking import FlatTopicModel
from repro.relations import CollaborationNetwork, build_candidate_graph
from repro.strod.tensor_power import (robust_tensor_decomposition,
                                      reconstruction_error)
import pytest

from repro.utils import normalize

# Reusable strategies -----------------------------------------------------

token_chunks = st.lists(
    st.lists(st.integers(min_value=0, max_value=8), min_size=1,
             max_size=12),
    min_size=1, max_size=25)

paper_records = st.lists(
    st.tuples(
        st.lists(st.sampled_from(["a", "b", "c", "d", "e", "f"]),
                 min_size=1, max_size=3),
        st.integers(min_value=1990, max_value=2010)),
    min_size=1, max_size=60)


class TestNotationRoundtrip:
    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=6))
    def test_path_notation_roundtrip(self, path):
        path = tuple(path)
        assert notation_to_path(path_to_notation(path)) == path


class TestNormalize:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=20))
    def test_normalize_is_distribution(self, values):
        result = normalize(values)
        assert abs(result.sum() - 1.0) < 1e-9
        assert (result >= 0).all()


class TestVocabularyRoundtrip:
    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1,
                    max_size=30))
    def test_encode_decode_roundtrip(self, words):
        vocab = Vocabulary()
        ids = vocab.encode(words, add_missing=True)
        assert vocab.decode(ids) == words


class TestFrequentPhrases:
    @given(token_chunks, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_downward_closure(self, chunks, min_support):
        counts = mine_frequent_phrases_from_chunks(
            chunks, min_support=min_support,
            num_tokens=sum(len(c) for c in chunks))
        for phrase, count in counts.counts.items():
            assert count >= min_support
            if len(phrase) >= 2:
                assert counts.frequency(phrase[:-1]) >= count
                assert counts.frequency(phrase[1:]) >= count

    @given(token_chunks)
    @settings(max_examples=40, deadline=None)
    def test_counts_match_brute_force(self, chunks):
        counts = mine_frequent_phrases_from_chunks(
            chunks, min_support=2,
            num_tokens=sum(len(c) for c in chunks))
        for phrase, count in counts.counts.items():
            brute = sum(
                1 for chunk in chunks
                for start in range(len(chunk) - len(phrase) + 1)
                if tuple(chunk[start:start + len(phrase)]) == phrase)
            assert brute == count


class TestSegmentation:
    @given(token_chunks, st.floats(min_value=0.0, max_value=10.0,
                                   allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_partition_reconstructs_chunk(self, chunks, alpha):
        counts = mine_frequent_phrases_from_chunks(
            chunks, min_support=2,
            num_tokens=sum(len(c) for c in chunks))
        for chunk in chunks:
            partition = segment_chunk(chunk, counts, alpha=alpha)
            flattened = [tok for phrase in partition for tok in phrase]
            assert flattened == list(chunk)

    @given(token_chunks)
    @settings(max_examples=30, deadline=None)
    def test_only_frequent_merges(self, chunks):
        counts = mine_frequent_phrases_from_chunks(
            chunks, min_support=2,
            num_tokens=sum(len(c) for c in chunks))
        for chunk in chunks:
            partition = segment_chunk(chunk, counts, alpha=0.0)
            for phrase in partition:
                if len(phrase) >= 2:
                    assert phrase in counts


class TestPhrasePosterior:
    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=2, max_value=10),
           st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=5),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_posterior_is_distribution(self, k, vocab, phrase, seed):
        rng = np.random.default_rng(seed)
        phrase = tuple(w % vocab for w in phrase)
        model = FlatTopicModel(rho=rng.dirichlet(np.ones(k)),
                               phi=rng.dirichlet(np.ones(vocab), size=k))
        posterior = phrase_topic_posterior(phrase, model)
        assert abs(posterior.sum() - 1.0) < 1e-9
        assert (posterior >= 0).all()


class TestCandidateGraphProperties:
    @given(paper_records)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_graph_acyclic_and_normalized(self, papers):
        network = CollaborationNetwork.from_papers(papers)
        graph = build_candidate_graph(network)
        assert graph.is_acyclic()
        for author in graph.authors:
            total = sum(c.likelihood for c in graph.advisors_of(author))
            assert abs(total - 1.0) < 1e-6
            for candidate in graph.advisors_of(author):
                assert candidate.start <= candidate.end

    @given(paper_records)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_advisor_started_strictly_earlier(self, papers):
        network = CollaborationNetwork.from_papers(papers)
        graph = build_candidate_graph(network)
        for author in graph.authors:
            first = network.series_of(author).first_year
            for candidate in graph.advisors_of(author):
                if candidate.advisor == "":
                    continue
                advisor_first = network.series_of(
                    candidate.advisor).first_year
                assert advisor_first < first


class TestTensorDecomposition:
    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_exact_recovery_of_orthogonal_tensors(self, k, seed):
        rng = np.random.default_rng(seed)
        basis, _ = np.linalg.qr(rng.standard_normal((k, k)))
        eigenvalues = np.sort(rng.uniform(1.0, 5.0, size=k))[::-1]
        tensor = np.zeros((k, k, k))
        for lam, v in zip(eigenvalues, basis.T):
            tensor += lam * np.einsum("i,j,l->ijl", v, v, v)
        pairs = robust_tensor_decomposition(tensor, k, num_restarts=8,
                                            num_iterations=50, seed=0)
        assert reconstruction_error(tensor, pairs) < 1e-4


class TestSignificanceSymmetry:
    @given(token_chunks)
    @settings(max_examples=30, deadline=None)
    def test_significance_finite_or_never(self, chunks):
        counts = mine_frequent_phrases_from_chunks(
            chunks, min_support=2,
            num_tokens=max(sum(len(c) for c in chunks), 1))
        unigrams = [p for p in counts.counts if len(p) == 1]
        for left in unigrams[:5]:
            for right in unigrams[:5]:
                value = merge_significance(counts, left, right)
                assert value == float("-inf") or np.isfinite(value)


class TestCathyEMProperties:
    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_invariants_on_random_networks(self, k, seed):
        from repro.cathy import CathyEM
        from repro.network import HeterogeneousNetwork

        rng = np.random.default_rng(seed)
        network = HeterogeneousNetwork(node_types=["term"])
        num_nodes = 8
        for i in range(num_nodes):
            network.add_node("term", f"w{i}")
        for _ in range(20):
            i, j = rng.integers(0, num_nodes, size=2)
            if i != j:
                network.add_link("term", int(i), "term", int(j),
                                 float(rng.integers(1, 5)))
        model = CathyEM(num_topics=k, max_iter=30, seed=0).fit(network)
        assert np.allclose(model.phi.sum(axis=1), 1.0, atol=1e-6)
        assert model.rho.sum() == pytest.approx(
            network.total_weight(), rel=1e-3)


class TestItemsetProperties:
    @given(token_chunks, st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_itemset_counts_match_brute_force(self, chunks, min_support):
        from repro.corpus import Corpus, Vocabulary
        from repro.phrases import mine_frequent_itemsets

        corpus = Corpus(vocabulary=Vocabulary(
            [f"w{i}" for i in range(9)]))
        for chunk in chunks:
            corpus.add_document([list(chunk)])
        itemsets = mine_frequent_itemsets(corpus,
                                          min_support=min_support,
                                          max_size=3)
        doc_sets = [frozenset(doc.tokens) for doc in corpus]
        for itemset, count in itemsets.items():
            brute = sum(1 for s in doc_sets if itemset <= s)
            assert brute == count
            assert count >= min_support
