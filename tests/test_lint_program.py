"""Tests for the whole-program analyzer (:mod:`repro.lint.graph` /
:mod:`repro.lint.program`) and the new rule families.

Fixture trees are miniature ``src/repro/<subsystem>/`` layouts written
to temporary directories, so the same layer table and registry logic
that governs the real repository is exercised against seeded
violations: an upward import, an import cycle, a blocking call in an
``async def``, an unregistered schema literal, a loaderless registered
format, and obs-namespace conflicts.  The SARIF emitter is validated
structurally against the SARIF 2.1.0 shape (required properties,
1-based regions, rule-index consistency) — the repository vendors no
JSON-schema engine, so the validator is hand-rolled and strict.
"""

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.lint import (lint_file, lint_project, render_sarif,
                        statement_extents, subsystem_of, summarize_file)
from repro.lint.cli import main as lint_main
from repro.lint.graph import ProjectGraph, load_cache
from repro.lint.program import LAYERS, changed_files, obs_inventory

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SERVE_PATH = "src/repro/serve/aio_fixture.py"


def write_tree(root, files):
    """Materialize ``{relpath: source}`` under ``root``; returns root."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


def project(root, paths=("src",), **kwargs):
    return lint_project(list(paths), root=str(root), **kwargs)


def rules_hit(result):
    return sorted({v.rule for v in result.violations})


# --------------------------------------------------------------- RL101/RL102
class TestLayering:
    def test_upward_import_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/obs/metrics.py": """
                from repro.serve.engine import answer
            """,
            "src/repro/serve/engine.py": """
                def answer():
                    return 1
            """,
        })
        result = project(root)
        assert rules_hit(result) == ["RL101"]
        violation = result.violations[0]
        assert violation.path == "src/repro/obs/metrics.py"
        assert "repro.obs.metrics" in violation.message
        assert "repro.serve.engine" in violation.message
        assert "chain" in violation.message

    def test_downward_and_same_level_imports_pass(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/serve/engine.py": """
                from repro.obs.metrics import inc
                from repro.stream.shards import ShardStore
            """,
            "src/repro/obs/metrics.py": """
                def inc(name):
                    pass
            """,
            "src/repro/stream/shards.py": """
                class ShardStore:
                    pass
            """,
        })
        assert project(root).clean

    def test_deferred_upward_import_is_exempt(self, tmp_path):
        # A function-local import executes late, cannot cycle at import
        # time, and is the sanctioned escape hatch for upward coupling.
        root = write_tree(tmp_path, {
            "src/repro/obs/metrics.py": """
                def flush():
                    from repro.serve.engine import answer
                    return answer()
            """,
            "src/repro/serve/engine.py": """
                def answer():
                    return 1
            """,
        })
        assert project(root).clean

    def test_type_checking_guarded_import_is_exempt(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/obs/metrics.py": """
                from typing import TYPE_CHECKING
                if TYPE_CHECKING:
                    from repro.serve.engine import Engine
            """,
            "src/repro/serve/engine.py": """
                class Engine:
                    pass
            """,
        })
        assert project(root).clean

    def test_import_cycle_is_flagged_with_chain(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/cathy/em.py": """
                from repro.cathy.builder import build
            """,
            "src/repro/cathy/builder.py": """
                from repro.cathy.em import fit
            """,
        })
        result = project(root)
        assert "RL102" in rules_hit(result)
        violation = next(v for v in result.violations
                         if v.rule == "RL102")
        assert "->" in violation.message
        assert "repro.cathy.builder" in violation.message
        assert "repro.cathy.em" in violation.message

    def test_cycle_broken_by_deferred_import_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/cathy/em.py": """
                from repro.cathy.builder import build
            """,
            "src/repro/cathy/builder.py": """
                def build():
                    from repro.cathy.em import fit
                    return fit
            """,
        })
        result = project(root)
        assert "RL102" not in rules_hit(result)

    def test_layer_table_is_total_over_the_real_tree(self):
        # Every repro.* module in the repository must map to a declared
        # layer — an unlayered subsystem is unenforceable.
        result = lint_project(["src"], root=REPO_ROOT)
        for module in result.modules:
            key = subsystem_of(module)
            assert key is not None, module
            assert key in LAYERS, f"{module} -> {key} not in LAYERS"


# -------------------------------------------------------------------- RL2xx
class TestAsyncSafety:
    def test_time_sleep_in_async_def_is_flagged(self):
        src = """
        import time
        async def handler():
            time.sleep(0.1)
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL201"]
        assert "event loop" in violations[0].message

    def test_bare_open_and_socket_and_numpy_are_flagged(self):
        src = """
        import socket
        import numpy as np
        async def handler():
            handle = open("data.json")
            conn = socket.create_connection(("h", 80))
            order = np.argsort(scores)
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL201"] * 3

    def test_offloaded_work_passes(self):
        src = """
        import asyncio
        import numpy as np
        def _kernel():
            return np.argsort([3, 1, 2])
        async def handler():
            return await asyncio.to_thread(_kernel)
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert not violations

    def test_nested_sync_def_body_is_not_flagged(self):
        # The nested def is shipped to a worker thread by the caller;
        # its body does not run on the event loop.
        src = """
        import asyncio
        import time
        async def handler():
            def work():
                time.sleep(1.0)
                return open("x").read()
            return await asyncio.to_thread(work)
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert not violations

    def test_sync_code_is_out_of_scope(self):
        src = """
        import time
        def handler():
            time.sleep(0.1)
            return open("x")
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert not violations

    def test_await_under_sync_lock_is_flagged(self):
        src = """
        import threading
        lock = threading.Lock()
        async def swap():
            with lock:
                await drain()
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL202"]

    def test_await_under_self_lock_attribute_is_flagged(self):
        src = """
        async def swap(self):
            with self._swap_lock:
                await self.drain()
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL202"]

    def test_async_with_asyncio_lock_passes(self):
        src = """
        import asyncio
        lock = asyncio.Lock()
        async def swap():
            async with lock:
                await drain()
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert not violations

    def test_sync_lock_without_await_passes(self):
        src = """
        import threading
        lock = threading.Lock()
        async def bump(self):
            with lock:
                self.count += 1
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert not violations

    def test_dropped_create_task_is_flagged(self):
        src = """
        import asyncio
        async def serve():
            asyncio.create_task(watchdog())
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL203"]

    def test_kept_task_handle_passes(self):
        src = """
        import asyncio
        async def serve(self):
            task = asyncio.create_task(watchdog())
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            await task
        """
        violations, _, _ = lint_file(SERVE_PATH, textwrap.dedent(src))
        assert not violations

    def test_real_serve_modules_are_async_clean(self):
        # The rules were derived from serve/aio.py's offload idiom; the
        # shipped server must pass its own contract without pragmas.
        for name in ("aio.py", "router.py"):
            path = os.path.join(REPO_ROOT, "src/repro/serve", name)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            violations, _, _ = lint_file(f"src/repro/serve/{name}",
                                         source)
            async_hits = [v for v in violations
                          if v.rule in ("RL201", "RL202", "RL203")]
            assert not async_hits, async_hits


# -------------------------------------------------------------- RL301/RL302
class TestSchemaRegistry:
    def test_unregistered_literal_is_flagged(self):
        src = """
        SCHEMA = "repro.stream/frobnicator/v1"
        """
        violations, _, _ = lint_file("src/repro/stream/frob.py",
                                     textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL301"]
        assert "not registered" in violations[0].message

    def test_registered_literal_duplicate_names_the_constant(self):
        src = """
        SCHEMA = "repro.serve/model/v1"
        """
        violations, _, _ = lint_file("src/repro/serve/x.py",
                                     textwrap.dedent(src))
        assert [v.rule for v in violations] == ["RL301"]
        assert "MODEL_V1" in violations[0].message

    def test_contracts_module_itself_is_exempt(self):
        src = """
        SCHEMA = "repro.serve/model/v1"
        """
        violations, _, _ = lint_file("src/repro/contracts.py",
                                     textwrap.dedent(src))
        assert not violations

    def test_docstring_prose_does_not_match(self):
        src = '''
        def loader():
            """Reads repro.serve/model/v1 documents from disk."""
            return 1
        '''
        violations, _, _ = lint_file("src/repro/serve/x.py",
                                     textwrap.dedent(src))
        assert not violations

    def test_registry_round_trip(self, tmp_path):
        # Unregistered literal -> RL301; registering it in the tree's
        # contracts module and importing the constant -> clean.
        seeded = {
            "src/repro/stream/frob.py": """
                SCHEMA = "repro.stream/frob/v1"
            """,
        }
        root = write_tree(tmp_path / "dirty", seeded)
        assert rules_hit(project(root)) == ["RL301"]

        registered = {
            "src/repro/contracts.py": """
                REGISTRY = {}

                def _register(fmt, *, owner, loader, title):
                    REGISTRY[fmt] = (owner, loader, title)
                    return fmt

                FROB_V1 = _register(
                    "repro.stream/frob/v1",
                    owner="repro.stream.frob",
                    loader="repro.stream.frob:load_frob",
                    title="frob artifact")
            """,
            "src/repro/stream/frob.py": """
                from repro.contracts import FROB_V1

                SCHEMA = FROB_V1

                def load_frob(path):
                    return path
            """,
        }
        root = write_tree(tmp_path / "clean", registered)
        assert project(root).clean

    def test_registered_format_without_loader_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/contracts.py": """
                def _register(fmt, **kwargs):
                    return fmt

                ORPHAN_V1 = _register(
                    "repro.stream/orphan/v1",
                    owner="repro.stream.orphan",
                    title="write-only format")
            """,
        })
        result = project(root)
        assert "RL302" in rules_hit(result)
        violation = next(v for v in result.violations
                         if v.rule == "RL302")
        assert "no loader" in violation.message

    def test_loader_that_does_not_resolve_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/contracts.py": """
                def _register(fmt, **kwargs):
                    return fmt

                GHOST_V1 = _register(
                    "repro.stream/ghost/v1",
                    owner="repro.stream.shards",
                    loader="repro.stream.shards:load_ghost",
                    title="loader points at nothing")
            """,
            "src/repro/stream/shards.py": """
                def load_shard(path):
                    return path
            """,
        })
        result = project(root)
        assert "RL302" in rules_hit(result)
        assert "load_ghost" in result.violations[-1].message

    def test_class_method_loader_resolves(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/contracts.py": """
                def _register(fmt, **kwargs):
                    return fmt

                BOX_V1 = _register(
                    "repro.stream/box/v1",
                    owner="repro.stream.box",
                    loader="repro.stream.box:BoxStore.load_box",
                    title="method entry point")
            """,
            "src/repro/stream/box.py": """
                class BoxStore:
                    def load_box(self, path):
                        return path
            """,
        })
        assert project(root).clean

    def test_tree_without_contracts_module_skips_rl302(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/stream/plain.py": """
                value = 1
            """,
        })
        assert project(root).clean


# -------------------------------------------------------------- RL401/RL402
class TestObsNamespace:
    def test_counter_vs_timer_conflict_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/serve/a.py": """
                from repro.obs import inc
                inc("serve.requests")
            """,
            "src/repro/serve/b.py": """
                from repro.obs import observe
                observe("serve.requests", 0.5)
            """,
            "src/repro/obs/__init__.py": """
                def inc(name, amount=1.0):
                    pass

                def observe(name, seconds):
                    pass
            """,
        })
        result = project(root)
        assert "RL401" in rules_hit(result)
        violation = next(v for v in result.violations
                         if v.rule == "RL401")
        assert "serve.requests" in violation.message

    def test_span_and_timer_same_name_are_compatible(self, tmp_path):
        # Spans observe into same-named timers by design (DESIGN §5.4).
        root = write_tree(tmp_path, {
            "src/repro/serve/a.py": """
                from repro.obs import observe, span
                observe("serve.search", 0.5)
                with span("serve.search"):
                    pass
            """,
            "src/repro/obs/__init__.py": """
                def observe(name, seconds):
                    pass

                def span(name, **attrs):
                    pass
            """,
        })
        result = project(root)
        assert "RL401" not in rules_hit(result)

    def test_cross_subsystem_collision_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/serve/a.py": """
                from repro.obs import inc
                inc("documents.processed")
            """,
            "src/repro/stream/b.py": """
                from repro.obs import inc
                inc("documents.processed")
            """,
            "src/repro/obs/__init__.py": """
                def inc(name, amount=1.0):
                    pass
            """,
        })
        result = project(root)
        assert "RL402" in rules_hit(result)
        violation = next(v for v in result.violations
                         if v.rule == "RL402")
        assert "serve" in violation.message
        assert "stream" in violation.message

    def test_fstring_names_become_star_patterns(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/serve/a.py": """
                from repro.obs import inc
                inc(f"serve.http.status.{status}")
            """,
            "src/repro/obs/__init__.py": """
                def inc(name, amount=1.0):
                    pass
            """,
        })
        result = project(root)
        rows = {row["name"]: row for row in result.obs_inventory}
        assert "serve.http.status.*" in rows
        assert rows["serve.http.status.*"]["kinds"] == ["counter"]

    def test_real_tree_inventory_has_no_conflicts(self):
        result = lint_project(["src"], root=REPO_ROOT)
        assert not [v for v in result.violations
                    if v.rule in ("RL401", "RL402")]
        rows = {row["name"]: row for row in result.obs_inventory}
        # Spot checks against known instrumentation sites.
        assert "serve.http.requests" in rows
        assert rows["serve.http.requests"]["subsystems"] == ["serve"]
        assert "strod.fit" in rows
        assert len(rows) > 80


# -------------------------------------------------------------------- graph
class TestGraphAndCache:
    def test_summary_round_trips_through_json(self):
        source = textwrap.dedent("""
            from repro.obs import inc

            SCHEMA = "repro.serve/model/v1"

            class Engine:
                def answer(self, q):
                    inc("serve.answers")
                    return q
        """)
        summary = summarize_file("src/repro/serve/engine.py", source)
        clone = type(summary).from_dict(
            json.loads(json.dumps(summary.to_dict())))
        assert clone.to_dict() == summary.to_dict()
        assert "Engine.answer" in clone.symbols
        assert clone.obs_sites[0]["name"] == "serve.answers"
        assert clone.schema_sites[0]["literal"] == "repro.serve/model/v1"

    def test_reexport_chain_resolves_symbols(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/stream/__init__.py": """
                from .shards import ShardStore
            """,
            "src/repro/stream/shards.py": """
                class ShardStore:
                    def load_shard(self, path):
                        return path
            """,
        })
        result = project(root)
        assert result.clean
        summaries = [summarize_file(
            path, open(os.path.join(str(tmp_path), path)).read())
            for path in ("src/repro/stream/__init__.py",
                         "src/repro/stream/shards.py")]
        graph = ProjectGraph(summaries)
        assert graph.resolve_symbol("repro.stream", "ShardStore")
        assert graph.resolve_symbol("repro.stream",
                                    "ShardStore.load_shard")
        assert not graph.resolve_symbol("repro.stream", "Missing")

    def test_warm_run_uses_cache_and_agrees_with_cold(self, tmp_path):
        cache = str(tmp_path / "lint-cache.json")
        t0 = time.perf_counter()
        cold = lint_project(["src"], root=REPO_ROOT, cache_path=cache)
        t1 = time.perf_counter()
        warm = lint_project(["src"], root=REPO_ROOT, cache_path=cache)
        t2 = time.perf_counter()
        assert cold.cache_stats["misses"] == len(cold.files)
        assert warm.cache_stats["hits"] == len(warm.files)
        assert warm.cache_stats["misses"] == 0
        assert [str(v) for v in warm.violations] == \
            [str(v) for v in cold.violations]
        assert warm.import_edges == cold.import_edges
        assert warm.obs_inventory == cold.obs_inventory
        # Acceptance criterion: warm incremental re-run >= 5x faster.
        assert (t1 - t0) > 5 * (t2 - t1), (
            f"cold {t1 - t0:.3f}s, warm {t2 - t1:.3f}s")

    def test_cache_invalidated_by_content_change(self, tmp_path):
        tree = {
            "src/repro/stream/a.py": "value = 1\n",
            "src/repro/stream/b.py": "other = 2\n",
        }
        root = write_tree(tmp_path, tree)
        cache = str(tmp_path / "cache.json")
        project(root, cache_path=cache)
        (tmp_path / "src/repro/stream/a.py").write_text("value = 3\n")
        warm = project(root, cache_path=cache)
        assert warm.cache_stats == {"hits": 1, "misses": 1}

    def test_stale_stamp_forces_cold_run(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/stream/a.py": "value = 1\n",
        })
        cache = str(tmp_path / "cache.json")
        project(root, cache_path=cache)
        with open(cache, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        doc["stamp"]["version"] = "0.0.0"
        with open(cache, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        warm = project(root, cache_path=cache)
        assert warm.cache_stats["hits"] == 0

    def test_load_cache_rejects_garbage(self, tmp_path):
        path = tmp_path / "cache.json"
        assert load_cache(str(path)) == {}
        path.write_text("not json at all {")
        assert load_cache(str(path)) == {}
        path.write_text(json.dumps({"schema": "wrong/schema/v9"}))
        assert load_cache(str(path)) == {}


# ------------------------------------------------------------- changed-only
class TestChangedOnly:
    def _git(self, root, *args):
        return subprocess.run(
            ["git", *args], cwd=root, capture_output=True, text=True,
            check=True,
            env={**os.environ,
                 "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                 "HOME": root})

    def test_scopes_to_git_changed_files(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/stream/committed.py": """
                SCHEMA = "repro.stream/old/v1"
            """,
        })
        try:
            self._git(root, "init", "-q")
            self._git(root, "add", "-A")
            self._git(root, "-c", "user.name=t",
                      "-c", "user.email=t@t", "commit", "-qm", "seed")
        except (OSError, subprocess.CalledProcessError):
            pytest.skip("git unavailable")
        write_tree(tmp_path, {
            "src/repro/stream/fresh.py": """
                SCHEMA = "repro.stream/new/v1"
            """,
        })
        scoped = project(root, changed_only=True)
        assert {v.path for v in scoped.violations} == \
            {"src/repro/stream/fresh.py"}
        full = project(root)
        assert {v.path for v in full.violations} == \
            {"src/repro/stream/committed.py",
             "src/repro/stream/fresh.py"}

    def test_non_git_root_degrades_to_empty_scope(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/stream/bad.py": """
                SCHEMA = "repro.stream/x/v1"
            """,
        })
        assert changed_files(root) in (set(), changed_files(root))
        scoped = project(root, changed_only=True)
        assert scoped.violations == []


# -------------------------------------------------------------------- SARIF
def validate_sarif(document):
    """Structural validation against the SARIF 2.1.0 shape.

    Hand-rolled (no jsonschema in the environment) but strict about
    everything the spec marks required: version enum, runs array,
    tool.driver.name, rule descriptors with ids, results whose ruleId /
    ruleIndex agree with the declared rules, physical locations with
    1-based regions, and resolvable uriBaseIds.
    """
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    assert isinstance(document["runs"], list) and document["runs"]
    for run in document["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rules = driver["rules"]
        rule_ids = [rule["id"] for rule in rules]
        assert len(rule_ids) == len(set(rule_ids))
        for rule in rules:
            assert rule["shortDescription"]["text"]
        base_ids = set(run.get("originalUriBaseIds", {}))
        for result in run["results"]:
            assert result["message"]["text"]
            assert result["ruleId"] in rule_ids
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]
            assert result["level"] in ("none", "note", "warning",
                                       "error")
            for location in result["locations"]:
                physical = location["physicalLocation"]
                artifact = physical["artifactLocation"]
                assert artifact["uri"]
                assert not artifact["uri"].startswith("/")
                if "uriBaseId" in artifact:
                    assert artifact["uriBaseId"] in base_ids
                region = physical["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
        for invocation in run.get("invocations", []):
            assert isinstance(invocation["executionSuccessful"], bool)


class TestSarif:
    def test_clean_run_emits_valid_empty_results(self):
        result = lint_project(["src"], root=REPO_ROOT)
        document = json.loads(render_sarif(result))
        validate_sarif(document)
        assert document["runs"][0]["results"] == []
        ids = {rule["id"]
               for rule in document["runs"][0]["tool"]["driver"]["rules"]}
        assert {"RL001", "RL101", "RL201", "RL301", "RL401",
                "RL000"} <= ids

    def test_seeded_violations_emit_valid_results(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/obs/metrics.py": """
                from repro.serve.engine import answer
            """,
            "src/repro/serve/engine.py": """
                import time
                async def answer():
                    time.sleep(1)
            """,
            "src/repro/stream/frob.py": """
                SCHEMA = "repro.stream/frob/v1"
            """,
        })
        result = project(root)
        assert {"RL101", "RL201", "RL301"} <= set(rules_hit(result))
        document = json.loads(render_sarif(result))
        validate_sarif(document)
        results = document["runs"][0]["results"]
        assert {r["ruleId"] for r in results} >= \
            {"RL101", "RL201", "RL301"}
        uris = {r["locations"][0]["physicalLocation"]
                ["artifactLocation"]["uri"] for r in results}
        assert "src/repro/stream/frob.py" in uris

    def test_cli_format_sarif(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/stream/frob.py": """
                SCHEMA = "repro.stream/frob/v1"
            """,
        })
        code = lint_main(["src", "--root", str(tmp_path),
                          "--format", "sarif"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        validate_sarif(document)
        assert document["runs"][0]["invocations"][0]["exitCode"] == 1


# ---------------------------------------------------------------------- CLI
class TestProgramCli:
    def test_per_file_mode_skips_program_rules(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/obs/metrics.py": """
                from repro.serve.engine import answer
            """,
            "src/repro/serve/engine.py": """
                def answer():
                    return 1
            """,
        })
        assert lint_main(["src", "--root", str(tmp_path),
                          "--per-file"]) == 0
        assert lint_main(["src", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out

    def test_per_file_mode_rejects_program_flags(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("a = 1\n")
        code = lint_main(["src", "--root", str(tmp_path), "--per-file",
                          "--changed-only"])
        assert code == 2
        assert "whole-program" in capsys.readouterr().err

    def test_json_report_carries_program_section(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/stream/a.py": """
                from repro.obs import inc
                inc("stream.documents")
            """,
            "src/repro/obs/__init__.py": """
                def inc(name, amount=1.0):
                    pass
            """,
        })
        code = lint_main(["src", "--root", str(tmp_path),
                          "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        program = doc["program"]
        assert program["modules"] == 2
        assert program["import_edges"] >= 1
        assert program["obs_inventory"][0]["name"] == "stream.documents"
        assert set(doc["rules"]) >= {"RL101", "RL302", "RL402"}

    def test_absolute_paths_infer_the_root(self, tmp_path, capsys,
                                           monkeypatch):
        # `repro lint /repo/src` from an unrelated cwd must behave
        # like `--root /repo src`: full module map, scoped rules
        # active, no phantom RL000 "unused pragma" noise.
        write_tree(tmp_path, {
            "src/repro/obs/metrics.py": """
                from repro.serve.engine import answer
            """,
            "src/repro/serve/engine.py": """
                def answer():
                    return 1
            """,
        })
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        code = lint_main([str(tmp_path / "src"), "--format", "json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["program"]["modules"] == 2
        assert [v["rule"] for v in doc["violations"]] == ["RL101"]
        assert doc["violations"][0]["file"] == "src/repro/obs/metrics.py"

    def test_absolute_path_under_explicit_root_is_relativized(
            self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/a.py": """
                x = 1
            """,
        })
        code = lint_main([str(tmp_path / "src" / "repro" / "a.py"),
                          "--root", str(tmp_path), "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["program"]["modules"] == 1

    def test_absolute_path_escaping_root_is_a_usage_error(
            self, tmp_path, capsys, monkeypatch):
        # No src/tests anchor to infer a root from -> refuse rather
        # than run with every path scope silently disarmed.
        loose = tmp_path / "loose.py"
        loose.write_text("a = 1\n")
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        assert lint_main([str(loose)]) == 2
        err = capsys.readouterr().err
        assert "escape --root" in err

    def test_obs_inventory_flag_prints_markdown(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/stream/a.py": """
                from repro.obs import inc
                inc("stream.documents")
            """,
            "src/repro/obs/__init__.py": """
                def inc(name, amount=1.0):
                    pass
            """,
        })
        assert lint_main(["src", "--root", str(tmp_path),
                          "--obs-inventory"]) == 0
        out = capsys.readouterr().out
        assert "| `stream.documents` | counter | stream | 1 |" in out


# ----------------------------------------------------------------- extents
class TestStatementExtents:
    def test_multiline_call_has_full_extent(self):
        import ast

        tree = ast.parse("x = f(\n    1,\n    2,\n)\n")
        assert (1, 4) in statement_extents(tree)

    def test_compound_header_extent_stops_before_body(self):
        import ast

        source = "with f(\n        'a') as h:\n    body()\n"
        tree = ast.parse(source)
        extents = statement_extents(tree)
        assert (1, 2) in extents
        assert all(end < 3 for _start, end in extents)
