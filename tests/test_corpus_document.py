"""Tests for repro.corpus.document."""

import pytest

from repro.corpus import Corpus
from repro.errors import DataError


class TestFromTexts:
    def test_builds_documents_and_vocabulary(self, tiny_corpus):
        assert len(tiny_corpus) == 8
        assert "query" in tiny_corpus.vocabulary

    def test_entities_attached(self, tiny_corpus):
        assert tiny_corpus[0].entity_list("author") == ["alice", "bob"]
        assert tiny_corpus[0].entity_list("venue") == ["DB-CONF"]

    def test_missing_entity_type_gives_empty(self, tiny_corpus):
        assert tiny_corpus[0].entity_list("location") == []

    def test_labels_and_years(self, tiny_corpus):
        assert tiny_corpus[0].label == "db"
        assert tiny_corpus[0].year == 2000

    def test_misaligned_metadata_rejected(self):
        with pytest.raises(DataError):
            Corpus.from_texts(["a b"], labels=["x", "y"])

    def test_doc_ids_sequential(self, tiny_corpus):
        assert [doc.doc_id for doc in tiny_corpus] == list(range(8))


class TestDocument:
    def test_tokens_flatten_chunks(self):
        corpus = Corpus.from_texts(["alpha beta, gamma"])
        doc = corpus[0]
        assert len(doc.chunks) == 2
        assert len(doc.tokens) == 3
        assert doc.length == 3


class TestCorpusViews:
    def test_num_tokens(self, tiny_corpus):
        assert tiny_corpus.num_tokens == sum(
            doc.length for doc in tiny_corpus)

    def test_entity_types_sorted(self, tiny_corpus):
        assert tiny_corpus.entity_types() == ["author", "venue"]

    def test_word_counts_total(self, tiny_corpus):
        counts = tiny_corpus.word_counts()
        assert sum(counts.values()) == tiny_corpus.num_tokens

    def test_document_frequency_bounded(self, tiny_corpus):
        df = tiny_corpus.document_frequency()
        assert all(1 <= v <= len(tiny_corpus) for v in df.values())

    def test_add_document_validates_token_ids(self, tiny_corpus):
        with pytest.raises(DataError):
            tiny_corpus.add_document([[10 ** 6]])


class TestSubset:
    def test_subset_shares_vocabulary(self, tiny_corpus):
        sub = tiny_corpus.subset([0, 3])
        assert sub.vocabulary is tiny_corpus.vocabulary
        assert len(sub) == 2

    def test_subset_renumbers_ids(self, tiny_corpus):
        sub = tiny_corpus.subset([5, 2])
        assert [doc.doc_id for doc in sub] == [0, 1]

    def test_subset_copies_content(self, tiny_corpus):
        sub = tiny_corpus.subset([0])
        sub[0].entities["author"].append("mallory")
        assert "mallory" not in tiny_corpus[0].entity_list("author")
