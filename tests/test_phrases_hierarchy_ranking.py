"""Tests for hierarchy phrase decoration (Definition 3 / Eq. 4.3)."""

import pytest

from repro.cathy import BuilderConfig, HierarchyBuilder
from repro.phrases import (attach_entity_rankings, attach_phrases,
                           compute_topic_phrase_frequencies,
                           mine_frequent_phrases)


@pytest.fixture(scope="module")
def decorated():
    from repro.datasets import DBLPConfig, generate_dblp
    from repro.network import build_collapsed_network
    dataset = generate_dblp(DBLPConfig(max_authors=100), seed=3)
    network = build_collapsed_network(dataset.corpus)
    # The builder seed picks which local optimum single-restart EM reaches;
    # this one is calibrated to the SeedSequence-spawn derivation used by
    # repro.parallel (worker-count-invariant streams).
    builder = HierarchyBuilder(
        BuilderConfig(num_children=[6, 3], max_depth=2,
                      weight_mode="learn", max_iter=60), seed=1)
    hierarchy = builder.build(network)
    counts = attach_phrases(hierarchy, dataset.corpus)
    attach_entity_rankings(hierarchy)
    return dataset, hierarchy, counts


class TestFrequencyFlow:
    def test_child_frequencies_bounded_by_parent(self, decorated):
        dataset, hierarchy, counts = decorated
        table, _ = compute_topic_phrase_frequencies(
            hierarchy, dataset.corpus, counts=counts)
        for topic in hierarchy.topics():
            if not topic.children:
                continue
            parent = table[topic.notation]
            child_sums = {}
            for child in topic.children:
                for phrase, value in table[child.notation].items():
                    child_sums[phrase] = child_sums.get(phrase, 0.0) + value
            for phrase, total in child_sums.items():
                assert total <= parent.get(phrase, 0.0) + 1e-6

    def test_root_frequencies_match_counts(self, decorated):
        dataset, hierarchy, counts = decorated
        table, _ = compute_topic_phrase_frequencies(
            hierarchy, dataset.corpus, counts=counts)
        root = table["o"]
        for phrase, value in root.items():
            assert value == pytest.approx(counts.frequency(phrase))


class TestDecoration:
    def test_all_topics_have_phrases(self, decorated):
        _, hierarchy, _ = decorated
        missing = [t.notation for t in hierarchy.topics() if not t.phrases]
        assert not missing

    def test_child_phrase_lists_differ_from_siblings(self, decorated):
        _, hierarchy, _ = decorated
        for topic in hierarchy.topics():
            lists = [set(c.top_phrases(5)) for c in topic.children]
            for i, a in enumerate(lists):
                for b in lists[i + 1:]:
                    assert len(a & b) <= 2

    def test_entity_rankings_attached(self, decorated):
        _, hierarchy, _ = decorated
        for child in hierarchy.root.children:
            assert child.entity_ranks.get("author")
            assert child.entity_ranks.get("venue")

    def test_unigram_restriction(self, decorated):
        dataset, hierarchy, counts = decorated
        attach_phrases(hierarchy, dataset.corpus, counts=counts,
                       max_phrase_tokens=1)
        for topic in hierarchy.topics():
            assert all(" " not in p for p, _ in topic.phrases)

    def test_top_level_topics_match_areas(self, decorated):
        """Each level-1 topic's phrases concentrate in one true area."""
        dataset, hierarchy, counts = decorated
        attach_phrases(hierarchy, dataset.corpus, counts=counts)
        truth = dataset.ground_truth
        phrase_area = {}
        for path, spec in truth.paths.items():
            if not path:
                continue
            for phrase in truth.normalized_phrases(path):
                phrase_area.setdefault(phrase, path[0])
        pure = 0
        for child in hierarchy.root.children:
            areas = [phrase_area[p] for p in child.top_phrases(8)
                     if p in phrase_area]
            if not areas:
                continue
            modal = max(set(areas), key=areas.count)
            if areas.count(modal) / len(areas) >= 0.6:
                pure += 1
        assert pure >= 4
