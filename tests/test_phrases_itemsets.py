"""Tests for frequent itemset mining (the original KERT candidate source)."""

import pytest

from repro.corpus import Corpus
from repro.errors import ConfigurationError
from repro.phrases import (KERT, KERTConfig, canonical_orders,
                           itemsets_as_phrase_counts,
                           mine_frequent_itemsets)


@pytest.fixture
def title_corpus():
    # "support vector machines" words co-occur regardless of order.
    texts = (["machines for support vector tasks"] * 4
             + ["support vector machines"] * 4
             + ["support beams", "vector graphics", "machines parts"])
    return Corpus.from_texts(texts)


def ids(corpus, words):
    return frozenset(corpus.vocabulary.id_of(w) for w in words.split())


class TestMining:
    def test_counts_document_frequency(self, title_corpus):
        itemsets = mine_frequent_itemsets(title_corpus, min_support=3)
        assert itemsets[ids(title_corpus, "support vector machines")] == 8
        assert itemsets[ids(title_corpus, "support")] == 9

    def test_min_support_filters(self, title_corpus):
        itemsets = mine_frequent_itemsets(title_corpus, min_support=5)
        assert ids(title_corpus, "support beams") not in itemsets

    def test_downward_closure(self, dblp_small):
        itemsets = mine_frequent_itemsets(dblp_small.corpus,
                                          min_support=8, max_size=3)
        from itertools import combinations
        for itemset, count in itemsets.items():
            if len(itemset) < 2:
                continue
            for sub in combinations(itemset, len(itemset) - 1):
                assert frozenset(sub) in itemsets
                assert itemsets[frozenset(sub)] >= count

    def test_max_size_respected(self, title_corpus):
        itemsets = mine_frequent_itemsets(title_corpus, min_support=3,
                                          max_size=2)
        assert max(len(s) for s in itemsets) == 2

    def test_invalid_support(self, title_corpus):
        with pytest.raises(ConfigurationError):
            mine_frequent_itemsets(title_corpus, min_support=0)


class TestCanonicalOrders:
    def test_majority_order_wins(self, title_corpus):
        itemsets = mine_frequent_itemsets(title_corpus, min_support=3)
        orders = canonical_orders(title_corpus, itemsets)
        svm = ids(title_corpus, "support vector machines")
        words = [title_corpus.vocabulary.word_of(w) for w in orders[svm]]
        # 4 docs say machines..support..vector, 4 say support vector
        # machines; the tie breaks deterministically.
        assert set(words) == {"support", "vector", "machines"}

    def test_singleton_order(self, title_corpus):
        itemsets = mine_frequent_itemsets(title_corpus, min_support=3)
        orders = canonical_orders(title_corpus, itemsets)
        single = ids(title_corpus, "support")
        assert orders[single] == (title_corpus.vocabulary.id_of("support"),)


class TestPhraseCountsAdapter:
    def test_kert_ranks_itemset_patterns(self, dblp_small):
        from repro.baselines import LDAGibbs
        corpus = dblp_small.corpus
        counts = itemsets_as_phrase_counts(corpus, min_support=10,
                                           max_size=3)
        lda = LDAGibbs(num_topics=6, iterations=10, seed=0).fit(
            [d.tokens for d in corpus], len(corpus.vocabulary))
        ranked = KERT(KERTConfig(min_support=10)).rank_strings(
            corpus, lda.to_flat(), counts=counts, top_k=5)
        assert len(ranked) == 6
        assert any(topic for topic in ranked)

    def test_adapter_constants(self, title_corpus):
        counts = itemsets_as_phrase_counts(title_corpus, min_support=3)
        assert counts.num_documents == len(title_corpus)
        assert counts.num_tokens == title_corpus.num_tokens
