"""Tests for the advising genealogy (Figure 6.2 visualization)."""

import pytest

from repro.relations import (Candidate, CandidateGraph, TPFG,
                             build_advising_forest, render_genealogy)
from repro.relations.genealogy import AdvisingEdge, AdvisingForest


@pytest.fixture
def chain_graph():
    """prof advises senior (1995-1999); senior advises junior (2003-)."""
    graph = CandidateGraph()
    graph.candidates["prof"] = [Candidate("prof", "", 1990, 2010, 1.0)]
    graph.candidates["senior"] = [
        Candidate("senior", "prof", 1995, 1999, 0.8),
        Candidate("senior", "", 1995, 2010, 0.2)]
    graph.candidates["junior"] = [
        Candidate("junior", "senior", 2003, 2007, 0.7),
        Candidate("junior", "", 2003, 2010, 0.3)]
    return graph


@pytest.fixture
def chain_forest(chain_graph):
    result = TPFG(max_iter=10).fit(chain_graph)
    return build_advising_forest(result, chain_graph)


class TestForestConstruction:
    def test_chain_structure(self, chain_forest):
        assert chain_forest.roots == ["prof"]
        assert [e.advisee for e in chain_forest.children["prof"]] == \
            ["senior"]
        assert [e.advisee for e in chain_forest.children["senior"]] == \
            ["junior"]

    def test_edges_carry_intervals_and_scores(self, chain_forest):
        edge = chain_forest.children["prof"][0]
        assert (edge.start, edge.end) == (1995, 1999)
        assert 0 < edge.score <= 1

    def test_generations(self, chain_forest):
        assert chain_forest.generation_of("prof") == 0
        assert chain_forest.generation_of("senior") == 1
        assert chain_forest.generation_of("junior") == 2

    def test_descendants(self, chain_forest):
        assert set(chain_forest.descendants("prof")) == \
            {"senior", "junior"}
        assert chain_forest.descendants("junior") == []

    def test_children_sorted_by_start_year(self):
        forest = AdvisingForest(children={"a": [
            AdvisingEdge("late", "a", 2005, 2008, 0.5),
            AdvisingEdge("early", "a", 2000, 2003, 0.5)]})
        # build_advising_forest sorts; hand-built forests may not be, so
        # sanity-check the sorting contract through the builder instead.
        graph = CandidateGraph()
        graph.candidates["a"] = [Candidate("a", "", 1990, 2010, 1.0)]
        graph.candidates["early"] = [
            Candidate("early", "a", 2000, 2003, 0.9),
            Candidate("early", "", 2000, 2010, 0.1)]
        graph.candidates["late"] = [
            Candidate("late", "a", 2005, 2008, 0.9),
            Candidate("late", "", 2005, 2010, 0.1)]
        result = TPFG(max_iter=10).fit(graph)
        built = build_advising_forest(result, graph)
        starts = [e.start for e in built.children["a"]]
        assert starts == sorted(starts)


class TestRendering:
    def test_full_forest_rendering(self, chain_forest):
        text = render_genealogy(chain_forest)
        lines = text.splitlines()
        assert lines[0] == "prof"
        assert "+- senior [1995-1999]" in lines[1]
        assert lines[2].startswith("    +- junior")

    def test_subtree_rendering(self, chain_forest):
        text = render_genealogy(chain_forest, root="senior")
        assert text.splitlines()[0] == "senior"
        assert "junior" in text
        assert "prof" not in text

    def test_max_depth_cuts(self, chain_forest):
        text = render_genealogy(chain_forest, max_depth=1)
        assert "senior" in text
        assert "junior" not in text


class TestOnSyntheticData:
    def test_forest_consistent_with_predictions(self, dblp_small):
        from repro.relations import (CollaborationNetwork,
                                     build_candidate_graph)
        network = CollaborationNetwork.from_corpus(dblp_small.corpus)
        graph = build_candidate_graph(network)
        result = TPFG(max_iter=10).fit(graph)
        forest = build_advising_forest(result, graph)
        predictions = result.predictions()
        for advisor, edges in forest.children.items():
            for edge in edges:
                assert predictions[edge.advisee] == advisor
        # Every author appears exactly once: as a root or as an advisee.
        advisees = {e.advisee for edges in forest.children.values()
                    for e in edges}
        assert advisees | set(forest.roots) == set(graph.authors)
        assert not (advisees & set(forest.roots))
