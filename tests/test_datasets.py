"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (DBLPConfig, NewsConfig, generate_dblp,
                            generate_dblp_area, generate_news,
                            generate_news_subset, generate_planted_lda,
                            hierarchy_paths)
from repro.hierarchy import notation_to_path


class TestDBLPGenerator:
    def test_reproducible(self):
        a = generate_dblp(DBLPConfig(max_authors=60), seed=1)
        b = generate_dblp(DBLPConfig(max_authors=60), seed=1)
        assert len(a.corpus) == len(b.corpus)
        assert a.corpus[0].chunks == b.corpus[0].chunks

    def test_different_seeds_differ(self):
        a = generate_dblp(DBLPConfig(max_authors=60), seed=1)
        b = generate_dblp(DBLPConfig(max_authors=60), seed=2)
        assert len(a.corpus) != len(b.corpus) or \
            a.corpus[0].chunks != b.corpus[0].chunks

    def test_entities_present(self, dblp_small):
        assert dblp_small.corpus.entity_types() == ["author", "venue"]
        assert all(doc.entity_list("venue") for doc in dblp_small.corpus)

    def test_labels_match_ground_truth(self, dblp_small):
        truth = dblp_small.ground_truth
        for doc in dblp_small.corpus:
            assert notation_to_path(doc.label) == \
                truth.topic_of_document(doc.doc_id)

    def test_advising_intervals_well_formed(self, dblp_small):
        for record in dblp_small.ground_truth.advising:
            assert record.start <= record.end
            assert record.advisor != record.advisee

    def test_advisor_forest_acyclic(self, dblp_small):
        advisor_of = {r.advisee: r.advisor
                      for r in dblp_small.ground_truth.advising}
        for start in advisor_of:
            seen = set()
            node = start
            while node in advisor_of:
                assert node not in seen
                seen.add(node)
                node = advisor_of[node]

    def test_venue_concentrated_in_area(self, dblp_small):
        truth = dblp_small.ground_truth
        for doc in dblp_small.corpus:
            venue = doc.entity_list("venue")[0]
            venue_area = truth.topic_of_entity("venue", venue)
            doc_area = truth.topic_of_document(doc.doc_id)[:1]
            assert venue_area == doc_area

    def test_max_authors_respected(self):
        ds = generate_dblp(DBLPConfig(max_authors=50), seed=0)
        authors = {a for doc in ds.corpus
                   for a in doc.entity_list("author")}
        assert len(authors) <= 50

    def test_advisor_coauthors_with_advisee(self, dblp_small):
        """The advising signal exists: most advisees co-publish with
        their advisor during the interval."""
        count = hits = 0
        pairs = {(r.advisee, r.advisor)
                 for r in dblp_small.ground_truth.advising}
        coauthored = set()
        for doc in dblp_small.corpus:
            authors = doc.entity_list("author")
            for a in authors:
                for b in authors:
                    coauthored.add((a, b))
        for advisee, advisor in pairs:
            count += 1
            if (advisee, advisor) in coauthored:
                hits += 1
        assert hits / count > 0.9

    def test_normalized_phrases_tokenized(self, dblp_small):
        truth = dblp_small.ground_truth
        leaf = next(p for p, spec in truth.paths.items()
                    if not spec.children)
        for phrase in truth.normalized_phrases(leaf):
            assert phrase == phrase.lower()
            assert "  " not in phrase


class TestDBLPArea:
    def test_single_area_subset(self):
        ds = generate_dblp_area(0, DBLPConfig(max_authors=80), seed=1)
        # All doc topics are now paths within the area (length 1).
        assert all(len(p) == 1 for p in ds.ground_truth.doc_topic_paths)
        assert len(ds.corpus) > 0

    def test_area_hierarchy_is_the_area(self):
        ds = generate_dblp_area(0, DBLPConfig(max_authors=80), seed=1)
        assert ds.ground_truth.hierarchy.name == "databases"


class TestNewsGenerator:
    def test_flat_topics(self, news_small):
        assert all(len(p) == 1
                   for p in news_small.ground_truth.doc_topic_paths)

    def test_entity_types(self, news_small):
        assert news_small.corpus.entity_types() == ["location", "person"]

    def test_subset_names(self):
        ds = generate_news_subset(seed=1)
        names = {spec.name
                 for spec in ds.ground_truth.hierarchy.children}
        assert names == {"bill clinton", "boston marathon", "earthquake",
                         "egypt"}

    def test_article_counts(self):
        ds = generate_news(NewsConfig(num_stories=3, articles_per_story=10),
                           seed=0)
        assert len(ds.corpus) == 30

    def test_reproducible(self):
        a = generate_news(NewsConfig(num_stories=2, articles_per_story=5),
                          seed=9)
        b = generate_news(NewsConfig(num_stories=2, articles_per_story=5),
                          seed=9)
        assert a.corpus[0].chunks == b.corpus[0].chunks


class TestPlantedLDA:
    def test_shapes(self, planted_small):
        assert planted_small.phi.shape == (4, 80)
        assert planted_small.thetas.shape == (600, 4)
        assert len(planted_small.docs) == 600

    def test_phi_rows_are_distributions(self, planted_small):
        sums = planted_small.phi.sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_word_count_matrix_totals(self, planted_small):
        counts = planted_small.word_count_matrix()
        assert counts.sum() == sum(len(d) for d in planted_small.docs)

    def test_alpha_validation(self):
        with pytest.raises(Exception):
            generate_planted_lda(num_topics=3, alpha=[1.0, 1.0])

    def test_custom_phi(self):
        phi = np.full((2, 10), 0.1)
        planted = generate_planted_lda(num_docs=20, num_topics=2,
                                       vocab_size=10, phi=phi, seed=0)
        assert np.allclose(planted.phi, phi)


class TestHierarchyPaths:
    def test_includes_root_and_leaves(self, dblp_small):
        paths = hierarchy_paths(dblp_small.ground_truth.hierarchy)
        assert () in paths
        leaf_count = sum(1 for spec in paths.values() if not spec.children)
        assert leaf_count == 18  # 6 areas x 3 subareas
