"""Deeper tests for the recursive STROD topic tree (Section 7.2)."""

import pytest

from repro.strod import STRODHierarchyBuilder, STRODTreeConfig


class TestTreeShape:
    def test_two_level_tree(self, dblp_small):
        builder = STRODHierarchyBuilder(
            STRODTreeConfig(num_children=3, max_depth=2,
                            min_documents=120), seed=0)
        hierarchy = builder.build(dblp_small.corpus)
        assert len(hierarchy.root.children) == 3
        assert hierarchy.height >= 1
        # Any expanded child has exactly 3 children.
        for child in hierarchy.root.children:
            assert len(child.children) in (0, 3)

    def test_min_documents_stops_recursion(self, dblp_small):
        builder = STRODHierarchyBuilder(
            STRODTreeConfig(num_children=3, max_depth=3,
                            min_documents=10 ** 9), seed=0)
        hierarchy = builder.build(dblp_small.corpus)
        assert hierarchy.height == 0

    def test_rho_values_are_proportions(self, dblp_small):
        builder = STRODHierarchyBuilder(
            STRODTreeConfig(num_children=4, max_depth=1,
                            min_documents=50), seed=0)
        hierarchy = builder.build(dblp_small.corpus)
        total = sum(c.rho for c in hierarchy.root.children)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_phi_dicts_are_normalized_enough(self, dblp_small):
        builder = STRODHierarchyBuilder(
            STRODTreeConfig(num_children=4, max_depth=1,
                            min_documents=50), seed=0)
        hierarchy = builder.build(dblp_small.corpus)
        for child in hierarchy.root.children:
            mass = sum(child.phi["term"].values())
            assert 0.9 <= mass <= 1.0 + 1e-6


class TestTreeQuality:
    def test_level1_topics_separate_areas(self, dblp_small):
        """Most level-1 STROD topics concentrate on one true area."""
        builder = STRODHierarchyBuilder(
            STRODTreeConfig(num_children=6, max_depth=1,
                            min_documents=50, num_restarts=10,
                            num_iterations=30), seed=0)
        hierarchy = builder.build(dblp_small.corpus)
        truth = dblp_small.ground_truth
        word_area = {}
        for path, spec in truth.paths.items():
            if not path:
                continue
            for word in spec.all_words():
                word_area.setdefault(word, path[0])
        pure = 0
        for child in hierarchy.root.children:
            areas = [word_area[w] for w in child.top_words("term", 8)
                     if w in word_area]
            if not areas:
                continue
            modal = max(set(areas), key=areas.count)
            if areas.count(modal) / len(areas) >= 0.6:
                pure += 1
        assert pure >= 4
