"""Tests for repro.network.weighted."""

import pytest

from repro.errors import DataError
from repro.network import HeterogeneousNetwork, canonical_link_type


@pytest.fixture
def net():
    network = HeterogeneousNetwork(node_types=["term", "author"])
    t0 = network.add_node("term", "query")
    t1 = network.add_node("term", "database")
    a0 = network.add_node("author", "alice")
    network.add_link("term", t0, "term", t1, 2.0)
    network.add_link("term", t0, "author", a0, 1.0)
    return network


class TestCanonicalLinkType:
    def test_orders_lexicographically(self):
        assert canonical_link_type("venue", "author") == ("author", "venue")
        assert canonical_link_type("author", "venue") == ("author", "venue")


class TestNodes:
    def test_add_node_idempotent(self, net):
        assert net.add_node("term", "query") == 0
        assert net.node_count("term") == 2

    def test_node_id_lookup(self, net):
        assert net.node_id("author", "alice") == 0

    def test_unknown_node_raises(self, net):
        with pytest.raises(DataError):
            net.node_id("author", "nobody")

    def test_unknown_type_raises(self, net):
        with pytest.raises(DataError):
            net.node_names("person")

    def test_has_node(self, net):
        assert net.has_node("term", "query")
        assert not net.has_node("term", "missing")


class TestLinks:
    def test_weight_accumulates(self, net):
        net.add_link("term", 0, "term", 1, 3.0)
        assert net.link_weight("term", 0, "term", 1) == 5.0

    def test_undirected_symmetry(self, net):
        assert net.link_weight("term", 1, "term", 0) == 2.0

    def test_cross_type_order_irrelevant(self, net):
        assert net.link_weight("author", 0, "term", 0) == 1.0
        assert net.link_weight("term", 0, "author", 0) == 1.0

    def test_absent_link_is_zero(self, net):
        assert net.link_weight("term", 1, "author", 0) == 0.0

    def test_negative_weight_rejected(self, net):
        with pytest.raises(DataError):
            net.add_link("term", 0, "term", 1, -1.0)

    def test_set_link_overwrites(self, net):
        net.set_link("term", 0, "term", 1, 7.0)
        assert net.link_weight("term", 0, "term", 1) == 7.0

    def test_set_link_zero_removes(self, net):
        net.set_link("term", 0, "term", 1, 0.0)
        assert net.num_links(("term", "term")) == 0

    def test_link_types_sorted_nonempty(self, net):
        assert net.link_types() == [("author", "term"), ("term", "term")]

    def test_total_weight(self, net):
        assert net.total_weight() == 3.0
        assert net.total_weight(("term", "term")) == 2.0

    def test_out_of_range_index_rejected(self, net):
        with pytest.raises(DataError):
            net.add_link("term", 0, "term", 99, 1.0)


class TestDegree:
    def test_degree_counts_incident_weight(self, net):
        assert net.degree("term", 0) == 3.0
        assert net.degree("author", 0) == 1.0


class TestSubnetwork:
    def test_threshold_filters_links(self, net):
        sub = net.subnetwork({("term", "term"): {(0, 1): 0.5}},
                             min_weight=1.0)
        assert sub.num_links() == 0

    def test_nodes_keep_identity(self, net):
        sub = net.subnetwork({("term", "term"): {(0, 1): 2.0}})
        assert sub.node_names("term") == ["query", "database"]
        assert sub.link_weight("term", 0, "term", 1) == 2.0

    def test_isolated_nodes_not_added(self, net):
        sub = net.subnetwork({("author", "term"): {(0, 0): 1.5}})
        assert "author" in sub.node_types()
        assert sub.node_count("author") == 1
        assert sub.node_count("term") == 1
