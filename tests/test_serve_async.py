"""Async serving layer: parity, concurrency, hardening, shutdown.

Three contracts under test:

* **parity** — the asyncio server answers byte-identically to the
  threaded server and to the engine called directly, including sharded
  search fan-out (property-tested over query parameters);
* **robustness** — malformed batch entries degrade to in-band per-op
  error records; missing / bad / oversized ``Content-Length`` map to
  411 / 400 / 413 with typed JSON payloads on BOTH server stacks
  (regression tests for the serve-layer hardening fixes);
* **lifecycle** — keep-alive, bounded concurrent batches that preserve
  order, and graceful SIGTERM shutdown.
"""

import concurrent.futures
import json
import os
import signal
import socket
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serve import ModelAsyncServer, ModelQueryEngine, ModelServer

from .test_serve_artifact import fitted  # noqa: F401 - shared fixture

_TEST_BODY_LIMIT = 8192


@pytest.fixture(scope="module")
def async_server(fitted):  # noqa: F811 - pytest fixture injection
    miner, result = fitted
    engine = ModelQueryEngine.from_result(
        result, config=miner._artifact_config(), phrase_shards=3)
    with ModelAsyncServer(engine, port=0,
                          max_body_bytes=_TEST_BODY_LIMIT) as srv:
        srv.start()
        yield srv


@pytest.fixture(scope="module")
def threaded_server(fitted):  # noqa: F811 - pytest fixture injection
    miner, result = fitted
    engine = ModelQueryEngine.from_result(result,
                                          config=miner._artifact_config())
    with ModelServer(engine, port=0,
                     max_body_bytes=_TEST_BODY_LIMIT) as srv:
        srv.start()
        yield srv


@pytest.fixture(params=["async", "threaded"])
def either_server(request, async_server, threaded_server):
    """Hardening regressions must hold on both server stacks."""
    return async_server if request.param == "async" else threaded_server


def _get(server, path, expect_status=200):
    url = f"http://{server.host}:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        assert exc.status == expect_status, exc.read()
        return exc.status, json.loads(exc.read())


def _post(server, path, payload, expect_status=200):
    url = f"http://{server.host}:{server.port}{path}"
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        assert exc.status == expect_status
        return exc.status, json.loads(exc.read())


def _read_response(stream):
    """Parse one HTTP/1.1 response off a socket file: (status, headers, body)."""
    status_line = stream.readline()
    assert status_line, "connection closed before a status line"
    headers = {}
    while True:
        line = stream.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    body = stream.read(int(headers.get("content-length", 0)))
    return int(status_line.split()[1]), headers, body


def _raw_request(server, data):
    """Send raw bytes, return the first parsed response."""
    with socket.create_connection((server.host, server.port),
                                  timeout=10) as sock:
        sock.sendall(data)
        with sock.makefile("rb") as stream:
            return _read_response(stream)


class TestParity:
    """Async answers == threaded answers == direct engine answers."""

    ENDPOINTS = [
        "/healthz",
        "/v1/model",
        "/v1/topics/o",
        "/v1/topics/o/1?phrases=3&terms=2&entities=2",
        "/v1/search?q=d&mode=prefix&limit=5",
        "/v1/search?q=a&mode=substring",
        "/v1/entities/alice",
        "/v1/entities/alice?type=author",
    ]

    @pytest.mark.parametrize("path", ENDPOINTS)
    def test_get_endpoints_match_threaded(self, async_server,
                                          threaded_server, path):
        a_status, a_payload = _get(async_server, path)
        t_status, t_payload = _get(threaded_server, path)
        assert a_status == t_status == 200
        if path == "/healthz":   # uptime differs; compare shape only
            assert a_payload.keys() == t_payload.keys()
        elif path == "/v1/model":  # creation timestamps differ
            a_manifest = dict(a_payload["manifest"])
            t_manifest = dict(t_payload["manifest"])
            a_manifest.pop("created_unix")
            t_manifest.pop("created_unix")
            assert a_manifest == t_manifest
        else:
            assert json.dumps(a_payload, sort_keys=True) == \
                json.dumps(t_payload, sort_keys=True)

    def test_unknown_path_is_404(self, async_server):
        status, payload = _get(async_server, "/v1/nope", expect_status=404)
        assert status == 404
        assert payload["error"]

    def test_unknown_topic_is_404(self, async_server):
        status, payload = _get(async_server, "/v1/topics/zzz",
                               expect_status=404)
        assert status == 404

    def test_bad_query_parameter_is_400(self, async_server):
        status, payload = _get(async_server, "/v1/topics/o?phrases=x",
                               expect_status=400)
        assert status == 400

    def test_prometheus_negotiation(self, async_server):
        url = (f"http://{async_server.host}:{async_server.port}/metrics")
        request = urllib.request.Request(
            url, headers={"Accept": "text/plain"})
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            text = response.read().decode()
        assert "serve_requests_total" in text or "repro" in text

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(phrases=st.integers(min_value=0, max_value=20),
           terms=st.integers(min_value=0, max_value=15))
    def test_topic_property_parity(self, async_server, fitted,  # noqa: F811
                                   phrases, terms):
        miner, result = fitted
        engine = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        _, payload = _get(async_server,
                          f"/v1/topics/o/1?phrases={phrases}&terms={terms}")
        direct = engine.topic("o/1", max_phrases=phrases, max_terms=terms)
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=st.text(alphabet="abcdefgstuv ", min_size=0, max_size=8),
           mode=st.sampled_from(["prefix", "substring"]),
           limit=st.integers(min_value=1, max_value=20))
    def test_sharded_search_parity(self, async_server, fitted,  # noqa: F811
                                   query, mode, limit):
        """Fan-out over 3 shards merges to the unsharded answer."""
        miner, result = fitted
        unsharded = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        encoded = urllib.parse.quote(query)
        _, payload = _get(async_server,
                          f"/v1/search?q={encoded}&mode={mode}"
                          f"&limit={limit}")
        direct = unsharded.search_phrases(query, mode=mode, limit=limit)
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_search_bad_mode_is_400(self, async_server):
        status, _ = _get(async_server, "/v1/search?q=d&mode=regex",
                         expect_status=400)
        assert status == 400

    def test_search_bad_limit_is_400(self, async_server):
        status, _ = _get(async_server, "/v1/search?q=d&limit=banana",
                         expect_status=400)
        assert status == 400


class TestBatch:
    def test_batch_matches_engine(self, async_server):
        requests = [
            {"op": "topic", "args": {"topic_id": "o"}},
            {"op": "search_phrases", "args": {"query": "d"}},
            {"op": "top_phrases", "args": {"topic_id": "o/1", "k": 3}},
        ]
        status, payload = _post(async_server, "/v1/batch", requests)
        assert status == 200
        direct = async_server.engine.batch(requests)
        assert json.dumps(payload, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_malformed_ops_fail_in_band_per_op(self, either_server):
        """Regression: one bad entry must not 500 the whole batch."""
        requests = [
            {"op": "topic", "args": {"topic_id": "o"}},
            {"op": "launch_missiles", "args": {}},       # unknown op
            "just a string",                             # non-dict entry
            {"op": "topic", "args": ["not", "a", "dict"]},  # bad args
            {"op": "topic", "args": {"topic_id": "o/1"}},
        ]
        status, payload = _post(either_server, "/v1/batch", requests)
        assert status == 200
        results = payload["results"]
        assert len(results) == 5
        assert results[0]["ok"] is True
        assert results[4]["ok"] is True
        for bad in results[1:4]:
            assert bad["ok"] is False
            assert bad["status"] == 400
            assert bad["error"]
        # Order is positional: result i answers request i.
        assert results[0]["result"]["topic"] == "o"
        assert results[4]["result"]["topic"] == "o/1"

    def test_non_list_payload_is_400(self, either_server):
        status, payload = _post(either_server, "/v1/batch",
                                {"not": "a list"}, expect_status=400)
        assert status == 400

    def test_invalid_json_body_is_400(self, either_server):
        body = b"{not json"
        request = (
            f"POST /v1/batch HTTP/1.1\r\n"
            f"Host: x\r\nContent-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode() + body
        status, _, raw = _raw_request(either_server, request)
        assert status == 400
        assert json.loads(raw)["error"]

    def test_concurrent_batches_preserve_order(self, async_server):
        """Many interleaved batches: each reply ordered like its request."""
        topics = ["o", "o/1", "o/2", "o"]
        requests = [{"op": "top_phrases",
                     "args": {"topic_id": t, "k": 2}} for t in topics]
        expected = async_server.engine.batch(requests)

        def one_round(_):
            return _post(async_server, "/v1/batch", requests)

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(one_round, range(24)))
        for status, payload in outcomes:
            assert status == 200
            assert json.dumps(payload, sort_keys=True) == \
                json.dumps(expected, sort_keys=True)


class TestBodyHardening:
    """Regressions for the Content-Length fixes, on both stacks."""

    def test_post_without_content_length_is_411(self, either_server):
        request = (b"POST /v1/batch HTTP/1.1\r\n"
                   b"Host: x\r\n\r\n")
        status, _, raw = _raw_request(either_server, request)
        assert status == 411
        payload = json.loads(raw)
        assert payload["code"] == "length_required"

    def test_non_integer_content_length_is_400(self, either_server):
        request = (b"POST /v1/batch HTTP/1.1\r\n"
                   b"Host: x\r\nContent-Length: banana\r\n\r\n")
        status, _, raw = _raw_request(either_server, request)
        assert status == 400
        assert json.loads(raw)["code"] == "bad_content_length"

    def test_negative_content_length_is_400(self, either_server):
        request = (b"POST /v1/batch HTTP/1.1\r\n"
                   b"Host: x\r\nContent-Length: -5\r\n\r\n")
        status, _, raw = _raw_request(either_server, request)
        assert status == 400
        assert json.loads(raw)["code"] == "bad_content_length"

    def test_oversized_body_is_413_with_context(self, either_server):
        declared = _TEST_BODY_LIMIT + 1
        request = (f"POST /v1/batch HTTP/1.1\r\n"
                   f"Host: x\r\nContent-Length: {declared}\r\n"
                   f"\r\n").encode()
        status, headers, raw = _raw_request(either_server, request)
        assert status == 413
        payload = json.loads(raw)
        assert payload["code"] == "body_too_large"
        assert payload["content_length"] == declared
        assert payload["max_body_bytes"] == _TEST_BODY_LIMIT
        # The unread body forces the connection closed.
        assert headers.get("connection") == "close"

    def test_body_at_limit_is_accepted(self, either_server):
        # Pad the batch with a junk string entry (answered in-band as a
        # 400 record) until the body sits exactly at the limit.
        head = [{"op": "topic", "args": {"topic_id": "o"}}]
        pad = _TEST_BODY_LIMIT - len(json.dumps(head + [""]).encode())
        body = json.dumps(head + ["x" * pad]).encode()
        assert len(body) == _TEST_BODY_LIMIT
        request = (f"POST /v1/batch HTTP/1.1\r\n"
                   f"Host: x\r\nContent-Length: {len(body)}\r\n"
                   f"Connection: close\r\n\r\n").encode() + body
        status, _, raw = _raw_request(either_server, request)
        assert status == 200
        assert json.loads(raw)["results"][0]["ok"] is True

    def test_truncated_body_is_400_on_async(self, async_server):
        body = b'{"requests": []}'
        request = (f"POST /v1/batch HTTP/1.1\r\n"
                   f"Host: x\r\nContent-Length: {len(body) + 50}\r\n"
                   f"\r\n").encode() + body
        with socket.create_connection(
                (async_server.host, async_server.port), timeout=10) as sock:
            sock.sendall(request)
            sock.shutdown(socket.SHUT_WR)  # EOF mid-body
            with sock.makefile("rb") as stream:
                status, _, raw = _read_response(stream)
        assert status == 400
        assert json.loads(raw)["code"] == "body_truncated"


class TestProtocol:
    def test_keep_alive_serves_two_requests(self, async_server):
        request = (b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        with socket.create_connection(
                (async_server.host, async_server.port), timeout=10) as sock:
            with sock.makefile("rb") as stream:
                sock.sendall(request)
                first, headers, _ = _read_response(stream)
                assert first == 200
                assert headers.get("connection") == "keep-alive"
                sock.sendall(request)
                second, _, _ = _read_response(stream)
                assert second == 200

    def test_http10_connection_closes(self, async_server):
        request = (b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
        status, headers, _ = _raw_request(async_server, request)
        assert status == 200
        assert headers.get("connection") == "close"

    def test_bad_request_line_is_400(self, async_server):
        status, _, raw = _raw_request(async_server, b"NONSENSE\r\n\r\n")
        assert status == 400
        assert json.loads(raw)["code"] == "bad_request_line"

    def test_overlong_request_line_is_414(self, async_server):
        request = b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n"
        status, _, _ = _raw_request(async_server, request)
        assert status == 414

    def test_unsupported_method_is_501(self, async_server):
        request = (b"DELETE /v1/model HTTP/1.1\r\nHost: x\r\n\r\n")
        status, _, _ = _raw_request(async_server, request)
        assert status == 501

    def test_responses_carry_request_ids(self, async_server):
        url = (f"http://{async_server.host}:{async_server.port}/healthz")
        with urllib.request.urlopen(url, timeout=10) as response:
            first = response.headers["X-Request-Id"]
        with urllib.request.urlopen(url, timeout=10) as response:
            second = response.headers["X-Request-Id"]
        assert first and second and first != second


class TestLifecycle:
    def test_invalid_timeout_rejected(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        with pytest.raises(ConfigurationError):
            ModelAsyncServer(engine, request_timeout=0)

    def test_invalid_body_limit_rejected(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        with pytest.raises(ConfigurationError):
            ModelAsyncServer(engine, max_body_bytes=0)

    def test_invalid_batch_concurrency_rejected(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        with pytest.raises(ConfigurationError):
            ModelAsyncServer(engine, batch_concurrency=0)

    def test_shutdown_before_start_is_noop(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        server = ModelAsyncServer(engine, port=0)
        server.shutdown()  # must not deadlock
        server.close()

    def test_start_shutdown_releases_port(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        with ModelAsyncServer(engine, port=0) as first:
            first.start()
            port = first.port
            status, _ = _get(first, "/healthz")
            assert status == 200
        with ModelAsyncServer(engine, port=port) as second:
            second.start()
            status, _ = _get(second, "/healthz")
            assert status == 200

    def test_sigterm_triggers_graceful_shutdown(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        server = ModelAsyncServer(engine, port=0)
        server.install_signal_handlers(signals=(signal.SIGTERM,))
        try:
            stopped = threading.Event()

            def run():
                server.serve_forever()
                stopped.set()

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            deadline = threading.Event()
            for _ in range(100):
                try:
                    status, _ = _get(server, "/healthz")
                    break
                except (urllib.error.URLError, OSError):
                    deadline.wait(0.05)
            assert status == 200
            os.kill(os.getpid(), signal.SIGTERM)
            assert stopped.wait(timeout=10), \
                "serve_forever did not return after SIGTERM"
            thread.join(timeout=5)
        finally:
            server.close()  # also restores the original signal handlers
