"""Tests for the topic specification helpers."""

from repro.corpus import tokenize
from repro.datasets import (TopicSpec, computer_science_hierarchy,
                            hierarchy_paths, news_stories)
from repro.datasets.vocabularies import NEWS_FOUR_TOPIC_SUBSET


class TestTopicSpec:
    def test_all_words_deduplicated(self):
        spec = TopicSpec(name="t", phrases=["a b", "b c"],
                         unigrams=["c", "d"])
        assert spec.all_words() == ["a", "b", "c", "d"]

    def test_leaves_of_leaf_is_self(self):
        spec = TopicSpec(name="leaf")
        assert spec.leaves() == [((), spec)]

    def test_leaves_paths(self):
        child_a = TopicSpec(name="a")
        child_b = TopicSpec(name="b")
        root = TopicSpec(name="root", children=[child_a, child_b])
        assert root.leaves() == [((0,), child_a), ((1,), child_b)]

    def test_find_descendant(self):
        grand = TopicSpec(name="g")
        child = TopicSpec(name="c", children=[grand])
        root = TopicSpec(name="r", children=[child])
        assert root.find((0, 0)) is grand
        assert root.find(()) is root


class TestBuiltInHierarchies:
    def test_cs_hierarchy_shape(self):
        root = computer_science_hierarchy()
        assert len(root.children) == 6
        for area in root.children:
            assert len(area.children) == 3
            for leaf in area.children:
                assert len(leaf.phrases) >= 3
                assert len(leaf.unigrams) >= 3

    def test_cs_leaf_phrases_multiword(self):
        root = computer_science_hierarchy()
        for _, leaf in root.leaves():
            multi = [p for p in leaf.phrases if len(p.split()) >= 2]
            assert len(multi) >= 3

    def test_leaf_vocabularies_mostly_disjoint(self):
        """Each leaf's phrase set is unique — the planted signal."""
        root = computer_science_hierarchy()
        seen = {}
        for path, leaf in root.leaves():
            for phrase in leaf.phrases:
                assert phrase not in seen, \
                    f"{phrase!r} appears in {seen.get(phrase)} and {path}"
                seen[phrase] = path

    def test_news_stories_carry_entities(self):
        root = news_stories(16)
        assert len(root.children) == 16
        for story in root.children:
            assert len(story.persons) >= 3
            assert len(story.locations) >= 3

    def test_news_subset_names_exist(self):
        root = news_stories(16)
        names = {story.name for story in root.children}
        assert set(NEWS_FOUR_TOPIC_SUBSET) <= names

    def test_hierarchy_paths_complete(self):
        root = computer_science_hierarchy()
        paths = hierarchy_paths(root)
        assert len(paths) == 1 + 6 + 18

    def test_phrases_survive_tokenization(self):
        """Planted phrases must keep >= 2 tokens after stopword removal
        (otherwise the phrase-mining signal degenerates)."""
        root = computer_science_hierarchy()
        for _, leaf in root.leaves():
            for phrase in leaf.phrases:
                if len(phrase.split()) >= 2:
                    assert len(tokenize(phrase)) >= 2
