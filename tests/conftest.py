"""Shared fixtures: small synthetic datasets, cached per session."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.corpus import Corpus
from repro.datasets import (DBLPConfig, NewsConfig, generate_dblp,
                            generate_news, generate_planted_lda)
from repro.network import build_collapsed_network, build_term_network


TINY_TEXTS = [
    "query processing in database systems",
    "query optimization for database systems",
    "database systems and query processing",
    "support vector machines for classification",
    "feature selection with support vector machines",
    "classification using support vector machines",
    "query processing and query optimization",
    "support vector machines and feature selection",
]

TINY_ENTITIES = [
    {"author": ["alice", "bob"], "venue": ["DB-CONF"]},
    {"author": ["alice"], "venue": ["DB-CONF"]},
    {"author": ["bob"], "venue": ["DB-CONF"]},
    {"author": ["carol", "dave"], "venue": ["ML-CONF"]},
    {"author": ["carol"], "venue": ["ML-CONF"]},
    {"author": ["dave"], "venue": ["ML-CONF"]},
    {"author": ["alice", "bob"], "venue": ["DB-CONF"]},
    {"author": ["carol", "dave"], "venue": ["ML-CONF"]},
]

TINY_LABELS = ["db", "db", "db", "ml", "ml", "ml", "db", "ml"]


@pytest.fixture(autouse=True)
def _isolate_obs():
    """Keep observability state from leaking between tests."""
    yield
    obs.reset()


@pytest.fixture
def tiny_corpus() -> Corpus:
    """Eight handcrafted titles over two clean topics."""
    return Corpus.from_texts(TINY_TEXTS, entities=TINY_ENTITIES,
                             labels=TINY_LABELS,
                             years=[2000 + i for i in range(len(TINY_TEXTS))])


@pytest.fixture(scope="session")
def dblp_small():
    """A small synthetic DBLP dataset shared across the session."""
    return generate_dblp(DBLPConfig(max_authors=120), seed=3)


@pytest.fixture(scope="session")
def dblp_network(dblp_small):
    return build_collapsed_network(dblp_small.corpus)


@pytest.fixture(scope="session")
def dblp_term_network(dblp_small):
    return build_term_network(dblp_small.corpus)


@pytest.fixture(scope="session")
def news_small():
    return generate_news(NewsConfig(num_stories=4, articles_per_story=50),
                         seed=5)


@pytest.fixture(scope="session")
def planted_small():
    return generate_planted_lda(num_docs=600, num_topics=4, vocab_size=80,
                                doc_length=40, seed=11)
