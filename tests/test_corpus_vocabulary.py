"""Tests for repro.corpus.vocabulary."""

import pytest

from repro.corpus import Vocabulary
from repro.errors import DataError


class TestVocabulary:
    def test_add_assigns_sequential_ids(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1

    def test_add_is_idempotent(self):
        vocab = Vocabulary(["a"])
        assert vocab.add("a") == 0
        assert len(vocab) == 1

    def test_id_of_unknown_raises(self):
        with pytest.raises(DataError):
            Vocabulary().id_of("missing")

    def test_word_of_roundtrip(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.word_of(vocab.id_of("y")) == "y"

    def test_word_of_out_of_range(self):
        with pytest.raises(DataError):
            Vocabulary(["x"]).word_of(5)

    def test_encode_strict(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(DataError):
            vocab.encode(["a", "b"])

    def test_encode_add_missing_grows(self):
        vocab = Vocabulary()
        ids = vocab.encode(["a", "b", "a"], add_missing=True)
        assert ids == [0, 1, 0]
        assert len(vocab) == 2

    def test_decode(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.decode([1, 0]) == ["b", "a"]

    def test_contains_and_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab
        assert "c" not in vocab
        assert list(vocab) == ["a", "b"]

    def test_deterministic_order(self):
        v1 = Vocabulary(["q", "p", "r"])
        v2 = Vocabulary(["q", "p", "r"])
        assert list(v1) == list(v2)
