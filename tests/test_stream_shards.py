"""ShardStore: the append-only corpus log behind streaming ingest.

The load-bearing claim (DESIGN §5.6): a corpus streamed in batches is
document-for-document and id-for-id identical to the one-shot batch
corpus built over the concatenated batches, and a *prefix* load
reproduces exactly the corpus a past refit saw — including the
vocabulary as of that prefix.  Plus the integrity story: CRC framing on
shards, validated vocab-delta replay, and content-keyed exactly-once
batch commit.
"""

import json
import os

import pytest

from repro.corpus import Corpus
from repro.datasets import NewsConfig, generate_news_subset, save_dataset
from repro.errors import ConfigurationError, DataError
from repro.stream import ShardStore, batch_key, is_shard_dir

from .faults import corrupt_file

BATCHES = [
    [{"text": "topic model inference. spectral method."},
     {"text": "tensor decomposition for topic model recovery."}],
    [{"text": "entity hierarchy mining. latent structure discovery."},
     {"text": "spectral inference scales. moment method estimation."}],
    [{"text": "heterogeneous network embedding. entity role analysis."}],
]


def _texts(batches):
    return [doc["text"] for batch in batches for doc in batch]


def _fill(store, batches=BATCHES):
    for batch in batches:
        store.append_batch(batch, batch_key=batch_key(batch))


class TestAppendAndLoad:
    def test_streamed_corpus_matches_batch_corpus(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        _fill(store)
        streamed = store.load_corpus()
        batch = Corpus.from_texts(_texts(BATCHES))
        assert list(streamed.vocabulary) == list(batch.vocabulary)
        assert len(streamed) == len(batch)
        for left, right in zip(streamed, batch):
            assert left.chunks == right.chunks

    def test_reopen_replays_vocab_deltas(self, tmp_path):
        path = str(tmp_path / "log")
        first = ShardStore(path)
        _fill(first)
        reopened = ShardStore(path)
        assert list(reopened.vocabulary) == list(first.vocabulary)
        assert reopened.num_shards == 3
        assert reopened.num_documents == 5
        assert reopened.vocab_version == first.vocab_version

    def test_prefix_load_gets_prefix_vocabulary(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        _fill(store)
        for k in range(1, len(BATCHES) + 1):
            prefix = store.load_corpus(num_shards=k)
            batch = Corpus.from_texts(_texts(BATCHES[:k]))
            assert list(prefix.vocabulary) == list(batch.vocabulary)
            assert len(prefix) == len(batch)

    def test_prechunked_documents_keep_metadata(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        store.append_batch([{
            "chunks": [["spectral", "method"], ["topic"]],
            "entities": {"author": ["J. Han"]},
            "year": 2014,
            "label": "dblp",
        }])
        doc = next(iter(store.load_corpus()))
        assert doc.entities == {"author": ["J. Han"]}
        assert doc.year == 2014
        assert doc.label == "dblp"
        assert [store.vocabulary.decode(chunk) for chunk in doc.chunks] \
            == [["spectral", "method"], ["topic"]]

    def test_empty_batch_rejected(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        with pytest.raises(DataError, match="empty batch"):
            store.append_batch([])

    def test_document_needs_text_or_chunks(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        with pytest.raises(DataError, match="'text' or 'chunks'"):
            store.append_batch([{"year": 2014}])


class TestIntegrity:
    def test_corrupted_shard_fails_crc_check(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        _fill(store)
        corrupt_file(os.path.join(str(tmp_path / "log"),
                                  "shards", "shard-000001"))
        store.load_shard(0)  # untouched neighbours still load
        with pytest.raises(DataError):
            store.load_shard(1)

    def test_shard_id_out_of_range(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        _fill(store)
        with pytest.raises(ConfigurationError, match="out of range"):
            store.load_shard(3)
        with pytest.raises(ConfigurationError, match="out of range"):
            store.load_corpus(num_shards=4)

    def test_foreign_manifest_rejected(self, tmp_path):
        path = tmp_path / "log"
        path.mkdir()
        (path / "MANIFEST.json").write_text(
            json.dumps({"schema": "something/else/v9"}))
        with pytest.raises(DataError, match="shard manifest"):
            ShardStore(str(path))

    def test_tampered_vocab_delta_detected_on_replay(self, tmp_path):
        path = str(tmp_path / "log")
        store = ShardStore(path)
        _fill(store)
        delta_path = os.path.join(path, "vocab", "vocab-000002.json")
        with open(delta_path) as handle:
            delta = json.load(handle)
        delta["start_id"] += 1
        with open(delta_path, "w") as handle:
            json.dump(delta, handle)
        with pytest.raises(DataError, match="corrupt delta log"):
            ShardStore(path)


class TestExactlyOnceCommit:
    def test_batch_key_is_a_stable_content_hash(self):
        assert batch_key(BATCHES[0]) == batch_key(list(BATCHES[0]))
        assert batch_key(BATCHES[0]) != batch_key(BATCHES[1])
        assert batch_key(BATCHES[0]).startswith("sha256:")

    def test_retried_batch_is_not_committed_twice(self, tmp_path):
        store = ShardStore(str(tmp_path / "log"))
        first = store.append_batch(BATCHES[0],
                                   batch_key=batch_key(BATCHES[0]))
        again = store.append_batch(BATCHES[0],
                                   batch_key=batch_key(BATCHES[0]))
        assert first["already_committed"] is False
        assert again["already_committed"] is True
        assert again["shard_id"] == first["shard_id"]
        assert again["num_documents"] == first["num_documents"]
        assert store.num_shards == 1

    def test_dedup_survives_reopen(self, tmp_path):
        path = str(tmp_path / "log")
        _fill(ShardStore(path))
        reopened = ShardStore(path)
        report = reopened.append_batch(BATCHES[1],
                                       batch_key=batch_key(BATCHES[1]))
        assert report["already_committed"] is True
        assert reopened.num_shards == 3


class TestShardDirGuard:
    def test_is_shard_dir(self, tmp_path):
        store_path = str(tmp_path / "log")
        ShardStore(store_path)
        assert is_shard_dir(store_path)
        assert not is_shard_dir(str(tmp_path))
        assert not is_shard_dir(str(tmp_path / "missing"))

    def test_save_dataset_refuses_shard_dir(self, tmp_path):
        store_path = str(tmp_path / "log")
        ShardStore(store_path)
        dataset = generate_news_subset(
            seed=0, config=NewsConfig(articles_per_story=3))
        with pytest.raises(DataError, match="streaming shard store"):
            save_dataset(dataset, store_path)
        with pytest.raises(DataError, match="directory, not a dataset"):
            save_dataset(dataset, str(tmp_path))
        save_dataset(dataset, str(tmp_path / "ok.json"))
