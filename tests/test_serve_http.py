"""HTTP serving layer: endpoints, error mapping, metrics, shutdown.

The acceptance invariant for ``repro.serve`` lives here: every answer
served over HTTP equals the answer computed directly from the in-memory
``MiningResult`` (property-tested over query parameters).
"""

import json
import os
import signal
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serve import ModelQueryEngine, ModelServer

from .test_serve_artifact import fitted  # noqa: F401 - shared fixture


@pytest.fixture(scope="module")
def server(fitted):  # noqa: F811 - pytest fixture injection
    miner, result = fitted
    engine = ModelQueryEngine.from_result(result,
                                          config=miner._artifact_config())
    with ModelServer(engine, port=0) as srv:  # port 0 -> ephemeral
        srv.start()
        yield srv


def _get(server, path, expect_status=200):
    url = f"http://{server.host}:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        assert exc.status == expect_status, exc.read()
        return exc.status, json.loads(exc.read())


def _post(server, path, payload, expect_status=200):
    url = f"http://{server.host}:{server.port}{path}"
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        assert exc.status == expect_status
        return exc.status, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0
        assert payload["num_topics"] >= 1

    def test_model_info(self, server):
        _, payload = _get(server, "/v1/model")
        assert payload == server.engine.model_info()

    def test_topic_notation_as_path(self, server):
        _, payload = _get(server, "/v1/topics/o/1")
        assert payload == server.engine.topic("o/1")

    def test_topic_query_parameters(self, server):
        _, payload = _get(server, "/v1/topics/o?phrases=2&terms=1")
        assert payload == server.engine.topic("o", max_phrases=2,
                                              max_terms=1)
        assert len(payload["phrases"]) <= 2

    def test_search(self, server):
        _, payload = _get(server, "/v1/search?q=support&mode=substring")
        assert payload == server.engine.search_phrases("support",
                                                       mode="substring")

    def test_entities(self, server):
        _, payload = _get(server, "/v1/entities/alice?type=author")
        assert payload == server.engine.entity_roles("alice",
                                                     entity_type="author")

    def test_batch_post(self, server):
        requests = [
            {"op": "top_phrases", "args": {"topic_id": "o", "k": 3}},
            {"op": "topic", "args": {"topic_id": "o/404"}},
        ]
        _, payload = _post(server, "/v1/batch", requests)
        assert payload == server.engine.batch(requests)
        assert payload["results"][0]["ok"]
        assert payload["results"][1]["status"] == 404


class TestRoundTripInvariant:
    """HTTP answers must equal direct in-memory engine answers, byte for
    byte once JSON-canonicalized — across all topics and parameters."""

    def test_all_topics_round_trip(self, server, fitted):  # noqa: F811
        miner, result = fitted
        direct = ModelQueryEngine.from_result(
            result, config=miner._artifact_config())
        for topic in result.hierarchy.topics():
            quoted = urllib.parse.quote(topic.notation)
            _, over_http = _get(server, f"/v1/topics/{quoted}")
            assert json.dumps(over_http, sort_keys=True) == \
                json.dumps(direct.topic(topic.notation), sort_keys=True)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(phrases=st.integers(min_value=0, max_value=20),
           entities=st.integers(min_value=0, max_value=8),
           terms=st.integers(min_value=0, max_value=15))
    def test_topic_parameters_round_trip(self, server, phrases, entities,
                                         terms):
        _, over_http = _get(
            server,
            f"/v1/topics/o/1?phrases={phrases}&entities={entities}"
            f"&terms={terms}")
        direct = server.engine.topic("o/1", max_phrases=phrases,
                                     max_entities=entities, max_terms=terms)
        assert json.dumps(over_http, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=st.text(alphabet="abcdefgstuv ", min_size=0, max_size=8),
           mode=st.sampled_from(["prefix", "substring"]),
           limit=st.integers(min_value=1, max_value=20))
    def test_search_round_trip(self, server, query, mode, limit):
        encoded = urllib.parse.quote(query)
        _, over_http = _get(
            server, f"/v1/search?q={encoded}&mode={mode}&limit={limit}")
        direct = server.engine.search_phrases(query, mode=mode, limit=limit)
        assert json.dumps(over_http, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)


class TestErrorMapping:
    def test_unknown_topic_is_404(self, server):
        status, payload = _get(server, "/v1/topics/o/9/9",
                               expect_status=404)
        assert status == 404 and "error" in payload

    def test_unknown_route_is_404(self, server):
        status, _ = _get(server, "/v1/nope", expect_status=404)
        assert status == 404

    def test_bad_parameter_is_400(self, server):
        status, payload = _get(server, "/v1/topics/o?phrases=many",
                               expect_status=400)
        assert status == 400 and "integer" in payload["error"]

    def test_search_without_query_is_400(self, server):
        status, _ = _get(server, "/v1/search", expect_status=400)
        assert status == 400

    def test_bad_batch_body_is_400(self, server):
        url = f"http://{server.host}:{server.port}/v1/batch"
        request = urllib.request.Request(url, data=b"not json{")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.status == 400

    def test_unknown_entity_is_404(self, server):
        status, _ = _get(server, "/v1/entities/nobody", expect_status=404)
        assert status == 404


class TestMetrics:
    def test_metrics_count_requests(self, server):
        _get(server, "/healthz")
        _get(server, "/v1/topics/o/9/9", expect_status=404)
        _, payload = _get(server, "/metrics")
        counters = payload["server"]["counters"]
        assert counters["serve.http.requests"] >= 3
        assert counters["serve.http.status.404"] >= 1
        assert counters["serve.http.status.200"] >= 1
        assert "serve.http.latency" in payload["server"]["timers"]
        assert "hits" in payload["cache"] and "misses" in payload["cache"]

    def test_registry_property_matches_endpoint(self, server):
        _get(server, "/healthz")
        snapshot = server.registry.snapshot()
        assert snapshot["counters"]["serve.http.requests"] >= 1


class TestLifecycle:
    def test_invalid_timeout_rejected(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        with pytest.raises(ConfigurationError):
            ModelServer(engine, request_timeout=0)

    def test_shutdown_before_start_is_noop(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        server = ModelServer(engine, port=0)
        server.shutdown()  # must not deadlock
        server.close()

    def test_start_shutdown_releases_port(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        with ModelServer(engine, port=0) as first:
            first.start()
            port = first.port
            status, _ = _get(first, "/healthz")
            assert status == 200
        # The context exit shut the server down; the port is free again.
        with ModelServer(engine, port=port) as second:
            second.start()
            status, _ = _get(second, "/healthz")
            assert status == 200

    def test_sigterm_triggers_graceful_shutdown(self, fitted):  # noqa: F811
        _, result = fitted
        engine = ModelQueryEngine.from_result(result)
        server = ModelServer(engine, port=0)
        server.install_signal_handlers(signals=(signal.SIGTERM,))
        try:
            stopped = threading.Event()

            def run():
                server.serve_forever()
                stopped.set()

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            status, _ = _get(server, "/healthz")
            assert status == 200
            os.kill(os.getpid(), signal.SIGTERM)
            assert stopped.wait(timeout=10), \
                "serve_forever did not return after SIGTERM"
            thread.join(timeout=5)
        finally:
            server.close()  # also restores the original signal handlers
