"""Worker-count invariance and vectorized-kernel equivalence tests.

The parallel execution layer promises bit-identical results for every
worker count under the same seed, and the vectorized solver kernels
promise to match the original loop implementations (kept in
:mod:`tests.reference_kernels`) to floating-point noise.  Both promises
are enforced here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.cathy import BuilderConfig, CathyEM, CathyHIN, HierarchyBuilder
from repro.cathy.em import (flat_scatter_index, posterior_link_split,
                            scatter_expectations, sparse_topic_buckets)
from repro.corpus import Corpus
from repro.network import build_term_network
from repro.phrases import mine_frequent_phrases, segment_corpus
from repro.phrases.frequent import PhraseCounts
from repro.phrases.significance import merge_significance

from .reference_kernels import (reference_expected_link_weights,
                                reference_posterior_link_split,
                                reference_scatter)


@pytest.fixture
def clique_network():
    texts = (["red green blue"] * 10) + (["cat dog bird"] * 10)
    return build_term_network(Corpus.from_texts(texts))


def _hin_params(model):
    data = {"rho": model.rho, "rho0": model.rho0, "ll": model.log_likelihood}
    for node_type in model.phi:
        data[f"phi.{node_type}"] = model.phi[node_type]
        data[f"phi0.{node_type}"] = model.phi_background[node_type]
    return data


class TestWorkerCountInvariance:
    """Same seed, any worker count -> bit-identical results."""

    def test_cathy_em_restarts(self, clique_network):
        serial = CathyEM(num_topics=2, restarts=4, seed=5,
                         workers=1).fit(clique_network)
        parallel = CathyEM(num_topics=2, restarts=4, seed=5,
                           workers=4).fit(clique_network)
        assert serial.log_likelihood == parallel.log_likelihood
        assert np.array_equal(serial.rho, parallel.rho)
        assert np.array_equal(serial.phi, parallel.phi)

    def test_cathy_hin_restarts(self, dblp_network):
        kwargs = dict(num_topics=4, weight_mode="learn", max_iter=30,
                      restarts=3)
        serial = CathyHIN(seed=7, workers=1, **kwargs).fit(dblp_network)
        parallel = CathyHIN(seed=7, workers=3, **kwargs).fit(dblp_network)
        assert serial.log_likelihood == parallel.log_likelihood
        for key, value in _hin_params(serial).items():
            assert np.array_equal(value, _hin_params(parallel)[key]), key

    def test_hierarchy_builder_subtrees(self, dblp_network):
        def build(workers):
            config = BuilderConfig(num_children=[4, 2], max_depth=2,
                                   weight_mode="learn", max_iter=30,
                                   workers=workers)
            return HierarchyBuilder(config, seed=11).build(dblp_network)

        serial = build(1)
        parallel = build(2)
        assert serial.to_json() == parallel.to_json()
        for ours, theirs in zip(serial.topics(), parallel.topics()):
            assert ours.notation == theirs.notation
            assert ours.rho == theirs.rho
            assert ours.phi == theirs.phi

    def test_segment_corpus(self, dblp_small):
        corpus = dblp_small.corpus
        counts = mine_frequent_phrases(corpus, min_support=5)
        serial = segment_corpus(corpus, counts, workers=1)
        parallel = segment_corpus(corpus, counts, workers=3)
        assert serial == parallel


class TestVectorizedKernels:
    """Vectorized kernels match the reference loops to 1e-12."""

    @staticmethod
    def _random_problem(rng, k, num_nodes, num_links, zero_node=False):
        phi = rng.dirichlet(np.ones(num_nodes), size=k)
        rho = rng.uniform(0.1, 5.0, size=k)
        i_idx = rng.integers(0, num_nodes, size=num_links)
        j_idx = rng.integers(0, num_nodes, size=num_links)
        weights = rng.uniform(0.0, 3.0, size=num_links)
        if zero_node:
            # Make every link touching node 0 degenerate.
            phi[:, 0] = 0.0
            phi /= phi.sum(axis=1, keepdims=True)
            i_idx[0] = 0
        return rho, phi, i_idx, j_idx, weights

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), k=st.integers(1, 6),
           num_nodes=st.integers(2, 20), num_links=st.integers(1, 60),
           zero_node=st.booleans())
    def test_posterior_link_split_matches_reference(
            self, seed, k, num_nodes, num_links, zero_node):
        rng = np.random.default_rng(seed)
        rho, phi, i_idx, j_idx, weights = self._random_problem(
            rng, k, num_nodes, num_links, zero_node)
        fast = posterior_link_split(rho, phi, i_idx, j_idx, weights,
                                    counter=None)
        slow = reference_posterior_link_split(rho, phi, i_idx, j_idx,
                                              weights)
        assert np.max(np.abs(fast - slow)) <= 1e-12

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), k=st.integers(1, 6),
           num_nodes=st.integers(2, 20), num_links=st.integers(1, 60))
    def test_scatter_matches_reference(self, seed, k, num_nodes, num_links):
        rng = np.random.default_rng(seed)
        expected = rng.uniform(0.0, 2.0, size=(k, num_links))
        i_idx = rng.integers(0, num_nodes, size=num_links)
        j_idx = rng.integers(0, num_nodes, size=num_links)
        fast = scatter_expectations(expected, i_idx, j_idx, num_nodes)
        slow = reference_scatter(expected, i_idx, j_idx, num_nodes)
        assert np.max(np.abs(fast - slow)) <= 1e-12
        flat_idx = (flat_scatter_index(i_idx, num_nodes, k),
                    flat_scatter_index(j_idx, num_nodes, k))
        precomputed = scatter_expectations(expected, i_idx, j_idx,
                                           num_nodes, flat_idx=flat_idx)
        assert np.array_equal(precomputed, fast)

    def test_bucketed_split_matches_reference_dicts(self):
        rng = np.random.default_rng(0)
        rho, phi, i_idx, j_idx, weights = self._random_problem(
            rng, 3, 12, 40)
        links = [(int(i), int(j), float(w))
                 for i, j, w in zip(i_idx, j_idx, weights)]
        expected = posterior_link_split(rho, phi, i_idx, j_idx, weights)
        fast = sparse_topic_buckets(expected, i_idx, j_idx)
        slow = reference_expected_link_weights(rho, phi, links)
        assert len(fast) == len(slow)
        for fast_bucket, slow_bucket in zip(fast, slow):
            assert set(fast_bucket) == set(slow_bucket)
            for key in slow_bucket:
                # Duplicate (i, j) links collapse to the last value in
                # both implementations.
                assert fast_bucket[key] == pytest.approx(
                    slow_bucket[key], abs=1e-12)

    def test_em_fit_matches_prevectorization_semantics(self, clique_network):
        # Single-restart fits through the public API stay deterministic
        # and produce proper distributions (the reference-EM invariants).
        model = CathyEM(num_topics=2, seed=3).fit(clique_network)
        again = CathyEM(num_topics=2, seed=3).fit(clique_network)
        assert np.array_equal(model.phi, again.phi)
        assert np.allclose(model.phi.sum(axis=1), 1.0)
        assert model.rho.sum() == pytest.approx(
            clique_network.total_weight(), rel=1e-3)


class TestDegenerateLinkCounter:
    def test_em_counts_degenerate_links(self, clique_network):
        obs.set_enabled(True)
        estimator = CathyEM(num_topics=2, seed=0)
        model = estimator.fit(clique_network)
        # Zero one node's mass in every subtopic: its links degenerate.
        model.phi[:, 0] = 0.0
        before = obs.get_registry().counter("cathy.degenerate_links")
        buckets = estimator.expected_link_weights(clique_network)
        after = obs.get_registry().counter("cathy.degenerate_links")
        assert after > before
        for bucket in buckets:
            assert all(i != 0 and j != 0 for i, j in bucket)

    def test_hin_counts_degenerate_links(self, dblp_network):
        obs.set_enabled(True)
        estimator = CathyHIN(num_topics=3, background=False, max_iter=20,
                             seed=0)
        model = estimator.fit(dblp_network)
        for node_type in model.phi:
            model.phi[node_type][:, 0] = 0.0
        before = obs.get_registry().counter("cathy.degenerate_links")
        estimator.expected_link_weights(0)
        after = obs.get_registry().counter("cathy.degenerate_links")
        assert after > before


class TestMergeCache:
    def test_hit_and_miss_counters(self):
        obs.set_enabled(True)
        corpus = Corpus.from_texts(["support vector machines"] * 6)
        counts = mine_frequent_phrases(corpus, min_support=2)
        tokens = corpus[0].tokens
        registry = obs.get_registry()
        merge_significance(counts, (tokens[0],), (tokens[1],))
        assert registry.counter("topmine.merge_cache.misses") == 1
        assert registry.counter("topmine.merge_cache.hits") == 0
        first = merge_significance(counts, (tokens[0],), (tokens[1],))
        assert registry.counter("topmine.merge_cache.hits") == 1
        second = merge_significance(counts, (tokens[0],), (tokens[1],))
        assert first == second
        assert registry.counter("topmine.merge_cache.hits") == 2
        assert registry.counter("topmine.merge_cache.misses") == 1

    def test_lru_eviction_respects_capacity(self):
        counts = PhraseCounts(counts={(1,): 5, (2,): 5, (3,): 5, (4,): 5},
                              min_support=1, num_documents=4, num_tokens=20,
                              merge_cache_capacity=2)
        merge_significance(counts, (1,), (2,))
        merge_significance(counts, (2,), (3,))
        merge_significance(counts, (3,), (4,))
        assert len(counts.merge_cache) == 2
        assert ((1,), (2,)) not in counts.merge_cache

    def test_cache_dropped_on_pickle(self):
        import pickle

        counts = PhraseCounts(counts={(1,): 5}, min_support=1,
                              num_documents=1, num_tokens=5)
        merge_significance(counts, (1,), (1,))
        assert counts.merge_cache
        clone = pickle.loads(pickle.dumps(counts))
        assert clone.merge_cache == {}
        assert clone.counts == counts.counts
        assert clone.merge_cache_capacity == counts.merge_cache_capacity

    def test_cached_values_match_uncached(self):
        corpus = Corpus.from_texts(
            ["query processing in database systems"] * 8)
        counts = mine_frequent_phrases(corpus, min_support=2)
        cold = PhraseCounts(counts=dict(counts.counts),
                            min_support=counts.min_support,
                            num_documents=counts.num_documents,
                            num_tokens=counts.num_tokens)
        tokens = corpus[0].tokens
        for cut in range(1, len(tokens)):
            left, right = tuple(tokens[:cut]), tuple(tokens[cut:])
            warm_value = merge_significance(counts, left, right)
            warm_again = merge_significance(counts, left, right)
            cold_value = merge_significance(cold, left, right)
            assert warm_value == warm_again == cold_value
