"""Tests for the execution-backend layer (repro.parallel)."""

import numpy as np
import pytest

import repro.obs as obs
from repro import parallel
from repro.errors import ConfigurationError
from repro.parallel import (ProcessBackend, SerialBackend, get_backend,
                            pmap, resolve_workers, rng_from,
                            seed_sequence_of, set_workers,
                            spawn_generators, spawn_seed_sequences)
from repro.parallel.backend import WORKERS_ENV


def _square(item):
    return item * item


def _add_shared(shared, item):
    return shared + item


def _nested_worker_count(shared, item):
    return resolve_workers()


def _shared_is_none(shared, item):
    return shared is None


@pytest.fixture(autouse=True)
def _reset_workers(monkeypatch):
    """Isolate the process-wide default and environment between tests."""
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    set_workers(None)
    yield
    set_workers(None)


class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_set_workers_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        set_workers(2)
        assert resolve_workers() == 2

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        set_workers(2)
        assert resolve_workers(5) == 5

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)
        with pytest.raises(ConfigurationError):
            set_workers(0)

    def test_pinned_serial_inside_worker(self, monkeypatch):
        monkeypatch.setattr(parallel.backend, "_IN_WORKER", True)
        set_workers(8)
        assert resolve_workers(4) == 1
        assert parallel.in_worker()

    def test_get_backend_selection(self):
        assert isinstance(get_backend(1), SerialBackend)
        assert isinstance(get_backend(3), ProcessBackend)


class TestPmap:
    def test_preserves_order_serial(self):
        assert pmap(_square, range(7)) == [i * i for i in range(7)]

    def test_preserves_order_process(self):
        result = pmap(_square, range(23), workers=3, chunk_size=4)
        assert result == [i * i for i in range(23)]

    def test_shared_payload_serial(self):
        assert pmap(_add_shared, [1, 2], shared=10) == [11, 12]

    def test_shared_payload_process(self):
        result = pmap(_add_shared, range(6), workers=2, shared=100)
        assert result == [100 + i for i in range(6)]

    def test_none_is_a_valid_shared_payload(self):
        # shared=None must reach the function, not be mistaken for unset.
        assert pmap(_shared_is_none, [1, 2], shared=None) == [True, True]
        backend = SerialBackend()
        assert backend.map(_square, [3]) == [9]

    def test_single_item_short_circuits_to_serial(self):
        obs.set_enabled(True)
        pmap(_square, [4], workers=4)
        registry = obs.get_registry()
        assert registry.counter("parallel.tasks.serial") == 1
        assert registry.counter("parallel.tasks.process") == 0

    def test_workers_pin_serial_inside_worker_tasks(self):
        counts = pmap(_nested_worker_count, range(4), workers=2,
                      shared=None)
        assert counts == [1, 1, 1, 1]

    def test_empty_items(self):
        assert pmap(_square, [], workers=4) == []

    def test_records_metrics(self):
        obs.set_enabled(True)
        pmap(_square, range(5), workers=2, label="unit.test")
        registry = obs.get_registry()
        assert registry.counter("parallel.tasks") == 5
        assert registry.counter("parallel.tasks.process") == 5
        assert registry.gauge("parallel.workers") == 2
        assert registry.timer("parallel.unit.test") is not None

    def test_process_backend_explicit_chunking(self):
        backend = ProcessBackend(2)
        result = backend.map(_square, list(range(10)), chunk_size=3)
        assert result == [i * i for i in range(10)]


class TestSeeding:
    def test_spawn_is_deterministic(self):
        a = spawn_seed_sequences(42, 4)
        b = spawn_seed_sequences(42, 4)
        for seq_a, seq_b in zip(a, b):
            assert rng_from(seq_a).random(8).tolist() \
                == rng_from(seq_b).random(8).tolist()

    def test_spawned_streams_are_distinct(self):
        draws = [rng.random() for rng in spawn_generators(0, 6)]
        assert len(set(draws)) == 6

    def test_generator_spawn_consumes_spawn_state(self):
        rng = np.random.default_rng(7)
        first = spawn_seed_sequences(rng, 2)
        second = spawn_seed_sequences(rng, 2)
        assert first[0].spawn_key != second[0].spawn_key

    def test_interleaved_draws_do_not_perturb_spawns(self):
        plain = np.random.default_rng(3)
        noisy = np.random.default_rng(3)
        noisy.random(100)  # spawn keys depend only on spawn call order
        a = spawn_seed_sequences(plain, 3)
        b = spawn_seed_sequences(noisy, 3)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_seed_sequence_passthrough(self):
        root = np.random.SeedSequence(5)
        children = spawn_seed_sequences(root, 2)
        assert children[0].spawn_key == (0,)
        assert children[1].spawn_key == (1,)

    def test_seed_sequence_of_roundtrip(self):
        seq = np.random.SeedSequence(9)
        rng = np.random.default_rng(seq)
        assert seed_sequence_of(rng) is seq
