"""Tests for repro.corpus.tokenize."""

from repro.corpus import (DEFAULT_STOPWORDS, join_tokens,
                          split_phrase_chunks, tokenize, tokenize_chunks)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Query Processing") == ["query", "processing"]

    def test_removes_stopwords(self):
        assert tokenize("the query of a system") == ["query", "system"]

    def test_strips_punctuation(self):
        assert tokenize("query, processing!") == ["query", "processing"]

    def test_keeps_hyphenated_words(self):
        assert tokenize("part-of-speech tagging") == ["part-of-speech",
                                                      "tagging"]

    def test_keeps_digits(self):
        assert "2014" in tokenize("the 2014 dataset")

    def test_custom_stopwords(self):
        assert tokenize("alpha beta", stopwords={"beta"}) == ["alpha"]

    def test_empty_text(self):
        assert tokenize("") == []


class TestSplitChunks:
    def test_splits_on_commas_and_periods(self):
        chunks = split_phrase_chunks("one two, three. four")
        assert chunks == ["one two", "three", "four"]

    def test_no_punctuation_single_chunk(self):
        assert split_phrase_chunks("a b c") == ["a b c"]

    def test_colons_and_parens(self):
        chunks = split_phrase_chunks("title: subtitle (extra)")
        assert chunks == ["title", "subtitle", "extra"]


class TestTokenizeChunks:
    def test_phrases_do_not_cross_punctuation(self):
        chunks = tokenize_chunks("mining frequent patterns, tree approach")
        assert len(chunks) == 2
        assert chunks[0] == ["mining", "frequent", "patterns"]
        assert chunks[1] == ["tree", "approach"]

    def test_empty_chunks_dropped(self):
        assert tokenize_chunks("the, of") == []

    def test_stopwords_within_chunks(self):
        chunks = tokenize_chunks("the state of the art")
        assert chunks == [["state", "art"]]


class TestJoinTokens:
    def test_roundtrip(self):
        assert join_tokens(["a", "b"]) == "a b"

    def test_default_stopwords_is_frozen(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)
