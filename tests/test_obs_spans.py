"""Tests for span tracing, quantile sketches, and profiling hooks."""

import json
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.obs.registry import QuantileSketch
from repro.obs.spans import _NULL_SPAN
from repro.parallel import pmap


def _enable_spans():
    obs.set_enabled(True)
    obs.set_spans_enabled(True)


class TestSpanTree:
    def test_nested_spans_link_parent_and_trace(self):
        _enable_spans()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = {r["name"]: r for r in obs.get_spans()}
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["inner"]["trace_id"] == records["outer"]["trace_id"]

    def test_tree_is_well_formed(self):
        """No orphans, and every child interval nests inside its parent."""
        _enable_spans()
        with obs.span("root"):
            for _ in range(3):
                with obs.span("child"):
                    with obs.span("grandchild"):
                        pass
        records = obs.get_spans()
        by_id = {r["span_id"]: r for r in records}
        for record in records:
            parent_id = record["parent_id"]
            if record["name"] == "root":
                assert parent_id is None
                continue
            assert parent_id in by_id, "orphaned span"
            parent = by_id[parent_id]
            assert parent["start_unix"] <= record["start_unix"]
            assert record["end_unix"] <= parent["end_unix"]

    def test_span_records_error_on_exception(self):
        _enable_spans()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        (record,) = obs.get_spans("boom")
        assert record["error"] == "ValueError"

    def test_span_doubles_as_timer(self):
        _enable_spans()
        with obs.span("phase.dual"):
            pass
        assert obs.get_registry().timer("phase.dual").count == 1

    def test_span_attrs_survive_to_record(self):
        _enable_spans()
        with obs.span("attrs", iteration=3) as handle:
            handle.set(extra="yes")
        (record,) = obs.get_spans("attrs")
        assert record["attrs"] == {"iteration": 3, "extra": "yes"}

    def test_merge_spans_grafts_orphans_under_current(self):
        _enable_spans()
        with obs.span("worker.task"):
            pass
        shipped = obs.get_spans()
        obs.clear_spans()
        with obs.span("parent") as parent:
            obs.merge_spans(shipped, parent_id=parent.span_id,
                            trace_id=parent.trace_id)
        records = {r["name"]: r for r in obs.get_spans()}
        grafted = records["worker.task"]
        assert grafted["parent_id"] == records["parent"]["span_id"]
        assert grafted["trace_id"] == records["parent"]["trace_id"]


def _by_id(records):
    """Chrome export reorders by start time; compare records by identity."""
    return {record["span_id"]: record for record in records}


class TestChromeTrace:
    def test_round_trip_is_lossless(self):
        _enable_spans()
        with obs.span("outer", level=1):
            with obs.span("inner"):
                pass
        records = obs.get_spans()
        chrome = obs.to_chrome_trace(records)
        assert chrome["displayTimeUnit"] == "ms"
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])
        assert _by_id(obs.from_chrome_trace(chrome)) == _by_id(records)

    def test_round_trip_survives_json(self):
        _enable_spans()
        with obs.span("jsonable", k="v"):
            pass
        records = obs.get_spans()
        chrome = json.loads(json.dumps(obs.to_chrome_trace(records)))
        assert _by_id(obs.from_chrome_trace(chrome)) == _by_id(records)


def sketches():
    return st.lists(
        st.floats(min_value=1e-8, max_value=1e4,
                  allow_nan=False, allow_infinity=False),
        max_size=30).map(lambda values: _sketch_of(values))


def _sketch_of(values):
    sketch = QuantileSketch()
    for value in values:
        sketch.add(value)
    return sketch


class TestQuantileSketch:
    @settings(max_examples=50, deadline=None)
    @given(sketches(), sketches(), sketches())
    def test_merge_is_associative(self, a, b, c):
        left = _sketch_of([])
        left.merge(a)
        left.merge(b)
        left.merge(c)

        bc = _sketch_of([])
        bc.merge(b)
        bc.merge(c)
        right = _sketch_of([])
        right.merge(a)
        right.merge(bc)

        assert left.to_dict() == right.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(sketches(), sketches())
    def test_merge_is_commutative(self, a, b):
        ab = _sketch_of([])
        ab.merge(a)
        ab.merge(b)
        ba = _sketch_of([])
        ba.merge(b)
        ba.merge(a)
        assert ab.to_dict() == ba.to_dict()

    def test_quantile_relative_error_bound(self):
        sketch = _sketch_of([float(i) for i in range(1, 1001)])
        for q, exact in ((0.5, 500.0), (0.9, 900.0), (0.99, 990.0)):
            assert abs(sketch.quantile(q) - exact) / exact < 0.10

    def test_round_trips_through_dict(self):
        sketch = _sketch_of([0.001, 0.5, 3.0, 3.0])
        back = QuantileSketch.from_dict(sketch.to_dict())
        assert back.to_dict() == sketch.to_dict()
        assert back.count == 4


class TestDisabledFastPath:
    def test_disabled_span_is_shared_singleton(self):
        assert obs.span("a.b") is obs.span("c.d") is _NULL_SPAN

    def test_disabled_span_allocates_nothing(self):
        # Warm up so interned constants and code objects are cached.
        with obs.span("warm"):
            pass
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for _ in range(100):
                with obs.span("hot.path"):
                    pass
            after = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        assert after - before == 0
        assert obs.get_spans() == []


def _count_and_span(x):
    obs.inc("spanless.worker.items")
    with obs.span("spanless.worker.task"):
        return x * 2


class TestCrossProcess:
    def test_counter_totals_identical_across_worker_counts(self):
        """Worker metrics must not vanish even with spans disabled."""
        items = list(range(12))
        totals = {}
        for workers in (1, 4):
            obs.reset()
            obs.set_enabled(True)
            assert not obs.spans_enabled()
            result = pmap(_count_and_span, items, workers=workers)
            assert result == [x * 2 for x in items]
            counters = obs.get_registry().snapshot()["counters"]
            totals[workers] = counters["spanless.worker.items"]
        assert totals[1] == totals[4] == float(len(items))

    def test_worker_spans_graft_into_one_tree(self):
        obs.reset()
        _enable_spans()
        pmap(_count_and_span, list(range(6)), workers=3,
             label="spans.demo")
        records = obs.get_spans()
        by_id = {r["span_id"]: r for r in records}
        worker_spans = [r for r in records
                        if r["name"] == "spanless.worker.task"]
        assert len(worker_spans) == 6
        (root,) = [r for r in records
                   if r["name"] == "parallel.spans.demo"]
        for record in worker_spans:
            assert record["parent_id"] == root["span_id"]
            assert record["trace_id"] == root["trace_id"]
        assert all(r["parent_id"] is None or r["parent_id"] in by_id
                   for r in records)

    def test_timer_quantiles_merge_from_workers(self):
        obs.reset()
        obs.set_enabled(True)
        pmap(_count_and_span, list(range(8)), workers=2)
        stats = obs.get_registry().timer("spanless.worker.task")
        assert stats.count == 8
        assert stats.quantile(0.5) > 0.0


class TestPrometheus:
    def test_render_includes_quantiles_and_counters(self):
        obs.set_enabled(True)
        obs.inc("serve.cache.hits", 3)
        obs.set_gauge("serve.uptime_s", 1.5)
        obs.observe("serve.http.latency", 0.01)
        text = obs.render_prometheus(obs.get_registry().snapshot())
        assert "repro_serve_cache_hits_total 3.0" in text
        assert "repro_serve_uptime_s 1.5" in text
        assert 'repro_serve_http_latency_seconds{quantile="0.99"}' in text
        assert "repro_serve_http_latency_seconds_count 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert obs.render_prometheus(
            {"counters": {}, "gauges": {}, "timers": {}}) == ""


class TestProfileAndReport:
    def test_profile_report_ranks_spans_by_self_time(self, tmp_path):
        _enable_spans()
        obs.set_profiling_enabled(True)
        with obs.span("profiled.outer"):
            data = [0] * 50_000
            with obs.span("profiled.inner"):
                data.extend(range(10_000))
        obs.set_profiling_enabled(False)
        report = obs.build_profile_report(config={"cmd": "test"})
        obs.validate_profile_report(report)
        assert report["schema"] == obs.PROFILE_SCHEMA
        names = [row["name"] for row in report["spans"]]
        assert {"profiled.outer", "profiled.inner"} <= set(names)
        (outer,) = [r for r in report["spans"]
                    if r["name"] == "profiled.outer"]
        assert outer["rss_peak_bytes"] >= 0
        path = tmp_path / "profile.json"
        obs.write_profile_report(report, str(path))
        assert json.loads(path.read_text())["schema"] == obs.PROFILE_SCHEMA

    def test_run_report_v2_has_resources_and_top_spans(self):
        _enable_spans()
        with obs.span("reported"):
            pass
        report = obs.build_run_report(config={})
        assert report["schema"] == obs.REPORT_SCHEMA
        assert report["resources"]["peak_rss_bytes"] > 0
        assert any(row["name"] == "reported"
                   for row in report["top_spans"])
        obs.validate_report(report)

    def test_v1_report_upgrades_through_loader_shim(self):
        report = obs.build_run_report(config={})
        report["schema"] = obs.REPORT_SCHEMA_V1
        del report["resources"]
        del report["top_spans"]
        obs.validate_report(report)
        upgraded = obs.upgrade_report(dict(report))
        assert upgraded["schema"] == obs.REPORT_SCHEMA
        assert upgraded["resources"] == {"peak_rss_bytes": 0,
                                         "cpu_time_s": 0.0}
        assert upgraded["top_spans"] == []
