"""Crash-safety tests: atomic writes, checkpoints, resume, degradation.

The central promise under test: a run killed at any point — mid-write,
mid-iteration, or by a dying pool worker — either resumes bit-for-bit
from its checkpoints or degrades to serial execution with identical
results.  Faults are injected with :mod:`tests.faults`.
"""

import json
import os

import numpy as np
import pytest

import repro.obs as obs
from repro.baselines import LDAGibbs
from repro.cathy import BuilderConfig, CathyEM, CathyHIN, HierarchyBuilder
from repro.core import LatentEntityMiner, MinerConfig
from repro.corpus import Corpus
from repro.errors import DataError, ExecutionError, ReproError
from repro.eval import held_out_perplexity
from repro.network import build_collapsed_network, build_term_network
from repro.parallel import pmap, pool_scope
from repro.phrases.ranking import FlatTopicModel
from repro.relations import TPFG
from repro.resilience import (CheckpointWriter, atomic_write_bytes,
                              atomic_write_json, checkpoint_in,
                              load_checkpoint, save_checkpoint)
from repro.strod import robust_tensor_decomposition

from .faults import (CrashingCheckpoint, FaultInjected, corrupt_file,
                     die_in_worker, die_on_odd_items, echo, hang_in_worker,
                     raise_value_error, truncate_file)


# --------------------------------------------------------------- fixtures
@pytest.fixture
def term_network():
    """Two term cliques: a trivially separable two-topic network."""
    texts = (["red green blue"] * 10) + (["cat dog bird"] * 10)
    return build_term_network(Corpus.from_texts(texts))


@pytest.fixture
def hetero_network():
    """Two communities with authors and venues."""
    texts = (["red green blue"] * 8) + (["cat dog bird"] * 8)
    entities = ([{"author": ["ann"], "venue": ["COLOR"]}] * 8
                + [{"author": ["zoe"], "venue": ["ANIMAL"]}] * 8)
    return build_collapsed_network(Corpus.from_texts(texts,
                                                     entities=entities))


def manual_graph():
    from repro.relations import Candidate, CandidateGraph, ROOT

    graph = CandidateGraph()
    graph.candidates["senior"] = [
        Candidate("senior", "prof", 1995, 2002, 0.8),
        Candidate("senior", ROOT, 1995, 2005, 0.2),
    ]
    graph.candidates["junior"] = [
        Candidate("junior", "senior", 2000, 2004, 0.45),
        Candidate("junior", "prof", 2000, 2004, 0.40),
        Candidate("junior", ROOT, 2000, 2005, 0.15),
    ]
    graph.candidates["prof"] = [Candidate("prof", ROOT, 1990, 2005, 1.0)]
    return graph


def planted_tensor():
    """A small odeco tensor with known components."""
    rng = np.random.default_rng(0)
    basis = np.linalg.qr(rng.normal(size=(4, 4)))[0]
    weights = [3.0, 2.0, 1.5]
    return sum(w * np.einsum("i,j,k->ijk", v, v, v)
               for w, v in zip(weights, basis.T))


# ---------------------------------------------------------- atomic writes
class TestAtomicWrites:
    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(str(path), b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_crash_mid_write_keeps_previous_version(self, tmp_path,
                                                    monkeypatch):
        path = tmp_path / "data.json"
        atomic_write_json(str(path), {"generation": 1})

        def refuse(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", refuse)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_json(str(path), {"generation": 2})
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"generation": 1}
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_unserializable_object_leaves_no_artifact(self, tmp_path):
        path = tmp_path / "data.json"
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        assert list(tmp_path.iterdir()) == []

    def test_save_dataset_crash_keeps_previous_version(self, tmp_path,
                                                       monkeypatch,
                                                       dblp_small):
        from repro.datasets import save_dataset

        path = tmp_path / "dataset.json"
        save_dataset(dblp_small, str(path))
        before = path.read_bytes()

        def refuse(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", refuse)
        with pytest.raises(OSError, match="simulated crash"):
            save_dataset(dblp_small, str(path))
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_run_report_write_is_atomic(self, tmp_path, monkeypatch):
        from repro.obs import build_run_report, write_report

        obs.configure()
        path = tmp_path / "report.json"
        write_report(build_run_report(config={"run": 1}), str(path))
        before = json.loads(path.read_text())
        assert before["config"] == {"run": 1}
        assert path.read_text().endswith("\n")

        def refuse(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", refuse)
        with pytest.raises(OSError):
            write_report(build_run_report(config={"run": 2}), str(path))
        monkeypatch.undo()
        assert json.loads(path.read_text())["config"] == {"run": 1}


# ---------------------------------------------------- checkpoint protocol
class TestCheckpointProtocol:
    def test_roundtrip(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x",
                                  config={"k": 3})
        writer.save(7, {"iteration": 7, "weights": [1.0, 2.0]})
        document = writer.load()
        assert document["iteration"] == 7
        assert document["state"]["weights"] == [1.0, 2.0]
        assert document["solver"] == "solver.x"

    def test_missing_file_loads_none(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        assert writer.load() is None

    def test_maybe_save_cadence(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x",
                                  every=3)
        assert not writer.maybe_save(0, lambda: {"iteration": 0})
        assert not writer.maybe_save(1, lambda: {"iteration": 1})
        assert writer.maybe_save(2, lambda: {"iteration": 2})
        assert writer.load()["iteration"] == 2

    def test_clear_removes_file(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        writer.save(0, {"iteration": 0})
        writer.clear()
        writer.clear()  # idempotent
        assert writer.load() is None

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "fit.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(DataError, match="not a repro checkpoint"):
            load_checkpoint(str(path))

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "fit.ckpt"
        save_checkpoint(str(path), {"schema":
                                    "repro.resilience/checkpoint/v1",
                                    "state": {}})
        truncate_file(str(path), 15)
        with pytest.raises(DataError, match="truncated"):
            load_checkpoint(str(path))

    def test_truncated_payload_rejected(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        writer.save(3, {"iteration": 3, "big": list(range(100))})
        size = os.path.getsize(writer.path)
        truncate_file(writer.path, size - 10)
        with pytest.raises(DataError, match="truncated"):
            writer.load()

    def test_bit_flip_rejected(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        writer.save(3, {"iteration": 3})
        corrupt_file(writer.path)
        with pytest.raises(DataError, match="corrupted"):
            writer.load()

    def test_wrong_solver_rejected(self, tmp_path):
        path = str(tmp_path / "fit.ckpt")
        CheckpointWriter(path, "solver.a").save(0, {"iteration": 0})
        with pytest.raises(DataError, match="written by solver"):
            CheckpointWriter(path, "solver.b").load()

    def test_config_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "fit.ckpt")
        CheckpointWriter(path, "solver.a",
                         config={"k": 3, "seed": 1}).save(0, {"iteration": 0})
        with pytest.raises(DataError, match="different configuration"):
            CheckpointWriter(path, "solver.a",
                             config={"k": 4, "seed": 1}).load()

    def test_checkpoint_in_none_directory(self, tmp_path):
        assert checkpoint_in(None, "fit", "solver.x") is None
        writer = checkpoint_in(str(tmp_path / "ckpts"), "fit", "solver.x")
        assert writer is not None
        writer.save(0, {"iteration": 0})
        assert (tmp_path / "ckpts" / "fit.ckpt").exists()


class TestCheckpointHistory:
    def test_default_keeps_all_superseded(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        for iteration in range(5):
            writer.save(iteration, {"iteration": iteration})
        history = writer.history_paths()
        assert len(history) == 4  # iterations 0..3; 4 is the live file
        assert writer.load()["iteration"] == 4

    def test_history_files_are_valid_checkpoints(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        for iteration in range(3):
            writer.save(iteration, {"iteration": iteration})
        iterations = [load_checkpoint(path)["iteration"]
                      for path in writer.history_paths()]
        assert iterations == [0, 1]  # oldest first

    def test_keep_last_zero_keeps_no_history(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x",
                                  keep_last=0)
        for iteration in range(5):
            writer.save(iteration, {"iteration": iteration})
        assert writer.history_paths() == []
        assert os.listdir(tmp_path) == ["fit.ckpt"]
        assert writer.load()["iteration"] == 4

    def test_keep_last_prunes_to_newest(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x",
                                  keep_last=2)
        for iteration in range(6):
            writer.save(iteration, {"iteration": iteration})
        history = writer.history_paths()
        assert [load_checkpoint(p)["iteration"] for p in history] == [3, 4]
        assert writer.load()["iteration"] == 5

    def test_negative_keep_last_rejected(self, tmp_path):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="keep_last"):
            CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x",
                             keep_last=-1)

    def test_clear_removes_history_too(self, tmp_path):
        writer = CheckpointWriter(str(tmp_path / "fit.ckpt"), "solver.x")
        for iteration in range(4):
            writer.save(iteration, {"iteration": iteration})
        writer.clear()
        assert os.listdir(tmp_path) == []

    def test_fresh_writer_over_existing_file_stays_monotone(self, tmp_path):
        path = str(tmp_path / "fit.ckpt")
        first = CheckpointWriter(path, "solver.x")
        for iteration in range(3):
            first.save(iteration, {"iteration": iteration})
        # A new writer that never loaded does not know the live file's
        # iteration; its archive stamp must still sort after the rest.
        second = CheckpointWriter(path, "solver.x")
        second.save(9, {"iteration": 9})
        history = second.history_paths()
        assert [load_checkpoint(p)["iteration"] for p in history[:2]] == \
            [0, 1]
        assert load_checkpoint(history[-1])["iteration"] == 2

    def test_checkpoint_in_threads_keep_last(self, tmp_path):
        writer = checkpoint_in(str(tmp_path), "fit", "solver.x",
                               keep_last=1)
        for iteration in range(4):
            writer.save(iteration, {"iteration": iteration})
        assert len(writer.history_paths()) == 1

    def test_prune_then_resume(self, term_network, tmp_path):
        """Pruned history never breaks resume: the live file is enough."""
        reference = CathyEM(num_topics=2, seed=0).fit(term_network)
        path = str(tmp_path / "em.ckpt")
        crasher = CrashingCheckpoint(path, "cathy.em", crash_after=3,
                                     keep_last=1)
        with pytest.raises(FaultInjected):
            CathyEM(num_topics=2, seed=0, checkpoint=crasher).fit(
                term_network)
        assert len(crasher.history_paths()) <= 1
        resumed = CathyEM(
            num_topics=2, seed=0,
            checkpoint=CheckpointWriter(path, "cathy.em", keep_last=1),
            resume=True).fit(term_network)
        assert np.array_equal(resumed.phi, reference.phi)
        assert resumed.log_likelihood == reference.log_likelihood


# ------------------------------------------------- kill/resume per solver
class TestKillResumeEquivalence:
    def test_cathy_em(self, term_network, tmp_path):
        reference = CathyEM(num_topics=2, seed=0).fit(term_network)
        path = str(tmp_path / "em.ckpt")
        crasher = CrashingCheckpoint(path, "cathy.em", crash_after=3)
        with pytest.raises(FaultInjected):
            CathyEM(num_topics=2, seed=0, checkpoint=crasher).fit(
                term_network)
        resumed = CathyEM(num_topics=2, seed=0,
                          checkpoint=CheckpointWriter(path, "cathy.em"),
                          resume=True).fit(term_network)
        assert np.array_equal(resumed.phi, reference.phi)
        assert np.array_equal(resumed.rho, reference.rho)
        assert resumed.log_likelihood == reference.log_likelihood

    def test_cathy_em_restarts(self, term_network, tmp_path):
        reference = CathyEM(num_topics=2, restarts=3, seed=1).fit(
            term_network)
        path = str(tmp_path / "em.ckpt")
        # Crash inside the second restart: completed restarts must be
        # restored wholesale, the live one from its iteration state.
        crasher = CrashingCheckpoint(path, "cathy.em", crash_after=8)
        with pytest.raises(FaultInjected):
            CathyEM(num_topics=2, restarts=3, seed=1,
                    checkpoint=crasher).fit(term_network)
        resumed = CathyEM(num_topics=2, restarts=3, seed=1,
                          checkpoint=CheckpointWriter(path, "cathy.em"),
                          resume=True).fit(term_network)
        assert np.array_equal(resumed.phi, reference.phi)
        assert resumed.log_likelihood == reference.log_likelihood

    def test_cathy_hin(self, hetero_network, tmp_path):
        reference = CathyHIN(num_topics=2, seed=0).fit(hetero_network)
        path = str(tmp_path / "hin.ckpt")
        crasher = CrashingCheckpoint(path, "cathy.hin_em", crash_after=4)
        with pytest.raises(FaultInjected):
            CathyHIN(num_topics=2, seed=0, checkpoint=crasher).fit(
                hetero_network)
        resumed = CathyHIN(num_topics=2, seed=0,
                           checkpoint=CheckpointWriter(path,
                                                       "cathy.hin_em"),
                           resume=True).fit(hetero_network)
        assert np.array_equal(resumed.rho, reference.rho)
        assert resumed.rho0 == reference.rho0
        for node_type in reference.phi:
            assert np.array_equal(resumed.phi[node_type],
                                  reference.phi[node_type])
        assert resumed.log_likelihood == reference.log_likelihood

    def test_lda_gibbs(self, tmp_path):
        texts = (["red green blue colors"] * 15
                 + ["cat dog bird animals"] * 15)
        corpus = Corpus.from_texts(texts)
        docs = [d.tokens for d in corpus]
        vocab = len(corpus.vocabulary)
        reference = LDAGibbs(num_topics=2, iterations=20, seed=0).fit(
            docs, vocab)
        path = str(tmp_path / "lda.ckpt")
        crasher = CrashingCheckpoint(path, "lda.gibbs", crash_after=5)
        with pytest.raises(FaultInjected):
            LDAGibbs(num_topics=2, iterations=20, seed=0,
                     checkpoint=crasher).fit(docs, vocab)
        resumed = LDAGibbs(num_topics=2, iterations=20, seed=0,
                           checkpoint=CheckpointWriter(path, "lda.gibbs"),
                           resume=True).fit(docs, vocab)
        assert np.array_equal(resumed.phi, reference.phi)
        assert np.array_equal(resumed.theta, reference.theta)
        assert len(resumed.assignments) == len(reference.assignments)
        for mine, theirs in zip(resumed.assignments,
                                reference.assignments):
            assert np.array_equal(mine, theirs)

    def test_tensor_power(self, tmp_path):
        tensor = planted_tensor()
        reference = robust_tensor_decomposition(tensor, 3, num_restarts=4,
                                                num_iterations=20, seed=1)
        path = str(tmp_path / "strod.ckpt")
        crasher = CrashingCheckpoint(path, "strod.tensor_power",
                                     crash_after=1)
        with pytest.raises(FaultInjected):
            robust_tensor_decomposition(tensor, 3, num_restarts=4,
                                        num_iterations=20, seed=1,
                                        checkpoint=crasher)
        resumed = robust_tensor_decomposition(
            tensor, 3, num_restarts=4, num_iterations=20, seed=1,
            checkpoint=CheckpointWriter(path, "strod.tensor_power"),
            resume=True)
        assert len(resumed) == len(reference)
        for a, b in zip(resumed, reference):
            assert a.eigenvalue == b.eigenvalue
            assert np.array_equal(a.eigenvector, b.eigenvector)

    def test_tpfg(self, tmp_path):
        reference = TPFG(max_iter=10).fit(manual_graph())
        path = str(tmp_path / "tpfg.ckpt")
        crasher = CrashingCheckpoint(path, "relations.tpfg", crash_after=4)
        with pytest.raises(FaultInjected):
            TPFG(max_iter=10).fit(manual_graph(), checkpoint=crasher)
        resumed = TPFG(max_iter=10).fit(
            manual_graph(),
            checkpoint=CheckpointWriter(path, "relations.tpfg"),
            resume=True)
        assert resumed.ranking == reference.ranking

    def test_corrupted_checkpoint_refuses_resume(self, tmp_path,
                                                 term_network):
        path = str(tmp_path / "em.ckpt")
        crasher = CrashingCheckpoint(path, "cathy.em", crash_after=2)
        with pytest.raises(FaultInjected):
            CathyEM(num_topics=2, seed=0, checkpoint=crasher).fit(
                term_network)
        corrupt_file(path)
        with pytest.raises(DataError, match="corrupted"):
            CathyEM(num_topics=2, seed=0,
                    checkpoint=CheckpointWriter(path, "cathy.em"),
                    resume=True).fit(term_network)


# ------------------------------------------------ hierarchy crash/resume
def _topics_equal(a, b):
    """Bit-for-bit comparison of two built hierarchies."""
    stack = [(a.root, b.root)]
    while stack:
        x, y = stack.pop()
        assert x.notation == y.notation
        assert x.rho == y.rho
        assert set(x.phi) == set(y.phi)
        for node_type in x.phi:
            assert np.array_equal(x.phi[node_type], y.phi[node_type])
        assert len(x.children) == len(y.children)
        stack.extend(zip(x.children, y.children))


class TestHierarchyKillResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_killed_build_resumes_bit_identical(self, dblp_network,
                                                tmp_path, monkeypatch,
                                                workers):
        import repro.cathy.builder as builder_mod

        def config(**overrides):
            return BuilderConfig(num_children=2, max_depth=2, max_iter=40,
                                 workers=workers, **overrides)

        reference = HierarchyBuilder(config(), seed=7).build(dblp_network)

        ckpt_dir = str(tmp_path / "ckpts")
        real_checkpoint_in = builder_mod.checkpoint_in
        armed = {"value": True}

        def crashing_checkpoint_in(directory, name, solver, config=None,
                                   every=1):
            writer = real_checkpoint_in(directory, name, solver,
                                        config=config, every=every)
            if writer is not None and armed["value"] \
                    and name.startswith("em_"):
                armed["value"] = False
                return CrashingCheckpoint(writer.path, solver,
                                          config=config, every=every,
                                          crash_after=2)
            return writer

        monkeypatch.setattr(builder_mod, "checkpoint_in",
                            crashing_checkpoint_in)
        with pytest.raises(FaultInjected):
            HierarchyBuilder(config(checkpoint_dir=ckpt_dir),
                             seed=7).build(dblp_network)
        assert os.listdir(ckpt_dir)  # the kill left state to resume from

        resumed = HierarchyBuilder(
            config(checkpoint_dir=ckpt_dir, resume=True),
            seed=7).build(dblp_network)
        _topics_equal(resumed, reference)

        # A second resume restores finished subtrees wholesale.
        restored = HierarchyBuilder(
            config(checkpoint_dir=ckpt_dir, resume=True),
            seed=7).build(dblp_network)
        _topics_equal(restored, reference)

    def test_foreign_checkpoints_rejected(self, dblp_network, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        cfg = BuilderConfig(num_children=2, max_depth=1, max_iter=30,
                            checkpoint_dir=ckpt_dir)
        HierarchyBuilder(cfg, seed=7).build(dblp_network)
        other = BuilderConfig(num_children=2, max_depth=1, max_iter=60,
                              checkpoint_dir=ckpt_dir, resume=True)
        with pytest.raises(DataError, match="different configuration"):
            HierarchyBuilder(other, seed=7).build(dblp_network)

    def test_miner_checkpoint_dir_matches_plain_fit(self, tiny_corpus,
                                                    tmp_path):
        miner_config = MinerConfig(num_children=2, max_depth=1,
                                   min_support=2)
        plain = LatentEntityMiner(miner_config, seed=3).fit(tiny_corpus)
        checkpointed = LatentEntityMiner(miner_config, seed=3).fit(
            tiny_corpus, checkpoint_dir=str(tmp_path / "ckpts"))
        _topics_equal(checkpointed.hierarchy, plain.hierarchy)


# ------------------------------------------------ fault-tolerant parallel
class TestFaultTolerantPmap:
    def test_dead_workers_degrade_to_serial(self):
        obs.configure()
        assert pmap(die_in_worker, range(8), workers=2) == list(range(8))
        counters = obs.get_registry().snapshot()["counters"]
        assert counters.get("parallel.degraded", 0) >= 1
        assert counters.get("parallel.degraded_chunks", 0) >= 1

    def test_partial_failure_keeps_order(self):
        assert pmap(die_on_odd_items, range(8), workers=2) == list(range(8))

    def test_raise_mode_is_typed_and_labelled(self):
        with pytest.raises(ExecutionError) as err:
            pmap(die_in_worker, range(8), workers=2, on_failure="raise",
                 label="doomed")
        assert err.value.label == "doomed"
        assert isinstance(err.value, ReproError)
        assert "doomed" in str(err.value)

    def test_timeout_degrades_to_serial(self):
        assert pmap(hang_in_worker, range(4), workers=2,
                    timeout=0.5) == list(range(4))

    def test_degradation_inside_pool_scope_recovers(self):
        with pool_scope():
            assert pmap(die_in_worker, range(4),
                        workers=2) == list(range(4))
            # The broken reusable pool was dropped; the next map works.
            assert pmap(echo, range(4), workers=2) == list(range(4))

    def test_work_function_errors_propagate_unwrapped(self):
        with pytest.raises(ValueError, match="injected work error"):
            pmap(raise_value_error, range(4), workers=2)


# -------------------------------------------------------- CLI failure modes
class TestCLIFailureModes:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, tmp_path,
                                          capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_generate", interrupted)
        code = cli.main(["generate", "dblp", str(tmp_path / "x.json")])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_keyboard_interrupt_flushes_report(self, monkeypatch, tmp_path,
                                               capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_generate", interrupted)
        report = tmp_path / "report.json"
        code = cli.main(["generate", "dblp", str(tmp_path / "x.json"),
                         "--report", str(report)])
        assert code == 130
        data = json.loads(report.read_text())
        assert data["schema"] == "repro.obs/run-report/v2"

    def test_execution_error_exits_2(self, monkeypatch, tmp_path, capsys):
        import repro.cli as cli

        def broken(args):
            raise ExecutionError("parallel map 'em' failed: pool died",
                                 label="em")

        monkeypatch.setattr(cli, "_cmd_generate", broken)
        code = cli.main(["generate", "dblp", str(tmp_path / "x.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro: error" in err
        assert "pool died" in err


# ------------------------------------------------------- perplexity edges
class TestPerplexityShortDocs:
    def _model(self):
        return FlatTopicModel(rho=np.full(2, 0.5),
                              phi=np.full((2, 4), 0.25))

    def test_all_short_docs_returns_inf_with_warning(self):
        obs.configure()
        with pytest.warns(RuntimeWarning, match="skipped 3 of 3"):
            result = held_out_perplexity(self._model(), [[0], [1], []],
                                         seed=0)
        assert result == float("inf")
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["eval.perplexity.skipped_docs"] == 3

    def test_mixed_corpus_warns_but_scores(self):
        with pytest.warns(RuntimeWarning, match="skipped 1 of 2"):
            result = held_out_perplexity(self._model(),
                                         [[0, 1, 2, 3], [1]], seed=0)
        assert np.isfinite(result)

    def test_long_docs_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = held_out_perplexity(self._model(), [[0, 1, 2, 3]] * 3,
                                         seed=0)
        assert np.isfinite(result)
