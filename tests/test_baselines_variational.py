"""Tests for the variational LDA baseline."""

import numpy as np
import pytest

from repro.baselines import VariationalLDA
from repro.datasets import generate_planted_lda
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def planted():
    return generate_planted_lda(num_docs=500, num_topics=3,
                                vocab_size=60, doc_length=40, seed=4)


class TestVariationalLDA:
    def test_phi_rows_are_distributions(self, planted):
        model = VariationalLDA(num_topics=3, em_iterations=10,
                               seed=0).fit(planted.docs,
                                           planted.vocab_size)
        assert np.allclose(model.phi.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(model.phi >= 0)

    def test_theta_rows_are_distributions(self, planted):
        model = VariationalLDA(num_topics=3, em_iterations=10,
                               seed=0).fit(planted.docs,
                                           planted.vocab_size)
        assert np.allclose(model.theta.sum(axis=1), 1.0, atol=1e-9)

    def test_bound_improves(self, planted):
        model = VariationalLDA(num_topics=3, em_iterations=15,
                               seed=0).fit(planted.docs,
                                           planted.vocab_size)
        trace = model.elbo_trace
        assert trace[-1] > trace[0]

    def test_recovers_separable_topics_reasonably(self):
        from repro.eval import recovery_error
        planted = generate_planted_lda(num_docs=800, num_topics=3,
                                       vocab_size=60, doc_length=50,
                                       seed=9)
        model = VariationalLDA(num_topics=3, em_iterations=40,
                               seed=1).fit(planted.docs,
                                           planted.vocab_size)
        # VB is a local-optimum method (the Chapter 7 point); it should
        # still land well under the ~2.0 error of random topics.
        assert recovery_error(planted.phi, model.phi) < 1.2

    def test_seed_dependence(self, planted):
        """Different seeds can land in different optima — the run-to-run
        variance Chapter 7 contrasts STROD against."""
        from repro.eval import pairwise_discrepancy
        phis = [VariationalLDA(num_topics=3, em_iterations=15,
                               seed=s).fit(planted.docs,
                                           planted.vocab_size).phi
                for s in (0, 1)]
        assert pairwise_discrepancy(phis) > 1e-4

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            VariationalLDA(num_topics=0)
        with pytest.raises(NotFittedError):
            VariationalLDA(num_topics=2).require_model()

    def test_to_flat_export(self, planted):
        model = VariationalLDA(num_topics=3, em_iterations=5,
                               seed=0).fit(planted.docs,
                                           planted.vocab_size)
        flat = model.to_flat()
        assert flat.num_topics == 3
        assert flat.rho.sum() == pytest.approx(1.0, abs=1e-9)
