#!/bin/sh
# Append every paper-vs-measured results table to a target file (default
# bench_output.txt), so the deliverable contains the tables pytest captures.
target="${1:-/root/repo/bench_output.txt}"
{
  echo
  echo "########################################################################"
  echo "# Paper-vs-measured tables (from benchmarks/results/)"
  echo "########################################################################"
  for f in /root/repo/benchmarks/results/*.txt; do
    echo
    cat "$f"
  done
} >> "$target"
echo "appended $(ls /root/repo/benchmarks/results/*.txt | wc -l) tables to $target"
# Machine-readable companion: per-benchmark wall-time + key metric.
python3 /root/repo/benchmarks/summarize.py || \
  python /root/repo/benchmarks/summarize.py
