"""Tables 4.1 / 4.6 / 4.7 / 4.8 — qualitative ToPMine topic visualizations.

The paper shows ToPMine's topics on DBLP titles (Table 4.1, the
Information Retrieval topic with top unigrams and phrases side by side),
DBLP abstracts (Table 4.6), AP news (Table 4.7) and Yelp (Table 4.8):
coherent phrase lists that make hard-to-read unigram topics
interpretable.  The bench renders the same two-column visualization for
the synthetic DBLP and NEWS corpora and checks the structural claims —
every topic gets multiword phrases, and the phrase column is judged more
interpretable (higher simulated-judge scores) than the unigram column.
"""

import numpy as np

from repro.eval import SimulatedPhraseJudge
from repro.phrases import ToPMine, ToPMineConfig

from conftest import fmt_row, report


def _visualize(result, corpus, num_topics, top_k=8):
    lines = []
    for t in range(num_topics):
        order = np.argsort(-result.model.phi[t])[:top_k]
        unigrams = [corpus.vocabulary.word_of(int(w)) for w in order]
        phrases = result.top_phrases(t, top_k, corpus)
        lines.append(f"topic {t}")
        lines.append("  terms  : " + ", ".join(unigrams))
        lines.append("  phrases: " + " / ".join(phrases))
    return lines


def test_table_4_1_dblp_visualization(benchmark, dblp):
    corpus = dblp.corpus

    def run():
        topmine = ToPMine(ToPMineConfig(num_topics=6, lda_iterations=50,
                                        merge_threshold=8.0), seed=0)
        return topmine.fit(corpus)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = _visualize(result, corpus, 6)
    lines.append("paper: phrases make unigram topics interpretable "
                 "(Table 4.1)")
    report("table_4_1_dblp_visualization", lines)

    judge = SimulatedPhraseJudge(dblp.ground_truth, noise=0.0, seed=0)
    phrase_scores, unigram_scores = [], []
    for t in range(6):
        order = np.argsort(-result.model.phi[t])[:8]
        unigram_scores.extend(
            judge.base_score(corpus.vocabulary.word_of(int(w)))
            for w in order)
        phrase_scores.extend(judge.base_score(p)
                             for p in result.top_phrases(t, 8, corpus))
        # Every topic shows multiword phrases.
        assert any(" " in p for p in result.top_phrases(t, 8, corpus))
    assert np.mean(phrase_scores) > np.mean(unigram_scores)


def test_table_4_7_news_visualization(benchmark, news16):
    corpus = news16.corpus

    def run():
        topmine = ToPMine(ToPMineConfig(num_topics=8, lda_iterations=40,
                                        min_support=4,
                                        merge_threshold=3.0), seed=0)
        return topmine.fit(corpus)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = _visualize(result, corpus, 8)
    lines.append("paper: news topics form around events; noisier than "
                 "DBLP but coherent (Table 4.7)")
    report("table_4_7_news_visualization", lines)

    topics_with_phrases = sum(
        1 for t in range(8)
        if any(" " in p for p in result.top_phrases(t, 8, corpus)))
    assert topics_with_phrases >= 6
