"""Table 3.5 — intruder detection tasks (% correct), DBLP and NEWS.

Paper result (DBLP / NEWS):

    method            Phrase   Venue   Author  Topic  |  Phrase  Loc.  Person  Topic
    CATHYHIN           0.83     0.83    1.00    1.00  |   0.65   0.70   0.80    0.90
    CATHYHIN1          0.64      --      --     0.92  |   0.40   0.55   0.50    0.70
    CATHY              0.72      --      --     0.92  |   0.58    --     --     0.65
    CATHY1             0.61      --      --     0.92  |   0.23    --     --     0.50
    CATHYheurHIN        --      0.78    0.94    0.92  |    --    0.65   0.45    0.70
    NetClus(pattern)   0.33     0.78    0.89    0.58  |   0.23   0.20   0.55    0.45
    NetClus            0.19     0.78    0.83    0.83  |   0.15   0.35   0.25    0.45

Expected reproduction: CATHYHIN highest on every task; phrases beat
unigrams (CATHYHIN > CATHYHIN1, CATHY > CATHY1); NetClus phrase intrusion
far below CATHY-family methods.
"""

from typing import Dict, List

import numpy as np

from repro.baselines import NetClus
from repro.eval import (LabelAffinity, generate_intrusion_questions,
                        generate_topic_intrusion_questions,
                        hierarchy_entity_groups, hierarchy_phrase_groups,
                        run_intrusion_task, run_topic_intrusion_task)
from repro.hierarchy import Topic, TopicalHierarchy
from repro.network import TERM_TYPE
from repro.phrases import attach_phrases

from _methods import build_decorated_hierarchy
from conftest import fmt_row, report

NOISE = 0.05
NUM_QUESTIONS = 60


def _heuristic_entity_rankings(hierarchy: TopicalHierarchy, corpus,
                               entity_types, top_k: int = 20) -> None:
    """CATHY-heuristic-HIN: rank entities posterior to text-only topics.

    An entity's topic score is the sum, over its linked documents, of the
    documents' term mass under the topic's term distribution — using only
    the original entity-document links, never refining the topics.
    """
    for topic in hierarchy.topics():
        term_phi = topic.phi.get(TERM_TYPE, {})
        scores: Dict[str, Dict[str, float]] = {t: {} for t in entity_types}
        for doc in corpus:
            mass = sum(term_phi.get(corpus.vocabulary.word_of(w), 0.0)
                       for w in doc.tokens)
            if mass <= 0:
                continue
            for etype in entity_types:
                for name in doc.entity_list(etype):
                    scores[etype][name] = scores[etype].get(name, 0.0) + mass
        for etype in entity_types:
            ranked = sorted(scores[etype].items(),
                            key=lambda kv: (-kv[1], kv[0]))
            topic.entity_ranks[etype] = ranked[:top_k]


def _netclus_hierarchy(corpus, num_children, seed: int = 0,
                       with_phrases: bool = True,
                       max_phrase_tokens=None) -> TopicalHierarchy:
    """Two-level recursive NetClus with phrase decoration."""
    hierarchy = TopicalHierarchy()
    top = NetClus(num_clusters=num_children[0], seed=seed).fit(corpus)
    entity_types = corpus.entity_types()
    for z in range(num_children[0]):
        child = Topic(rho=float((top.assignments == z).mean()),
                      phi={TERM_TYPE: top.topic_distribution(TERM_TYPE, z),
                           **{t: top.topic_distribution(t, z)
                              for t in entity_types}})
        hierarchy.root.add_child(child)
        doc_ids = [i for i in range(len(corpus))
                   if top.assignments[i] == z]
        if len(doc_ids) < 10 or len(num_children) < 2:
            continue
        sub_corpus = corpus.subset(doc_ids)
        sub = NetClus(num_clusters=num_children[1], seed=seed).fit(
            sub_corpus)
        for y in range(num_children[1]):
            grand = Topic(rho=float((sub.assignments == y).mean()),
                          phi={TERM_TYPE: sub.topic_distribution(
                              TERM_TYPE, y),
                              **{t: sub.topic_distribution(t, y)
                                 for t in entity_types}})
            child.add_child(grand)
    if with_phrases:
        attach_phrases(hierarchy, corpus,
                       max_phrase_tokens=max_phrase_tokens)
    else:
        # Unigram "phrases" straight from the ranking distributions.
        for topic in hierarchy.topics():
            ranked = sorted(topic.phi.get(TERM_TYPE, {}).items(),
                            key=lambda kv: (-kv[1], kv[0]))[:20]
            topic.phrases = [(name, score) for name, score in ranked]
    for topic in hierarchy.topics():
        for etype in entity_types:
            ranked = sorted(topic.phi.get(etype, {}).items(),
                            key=lambda kv: (-kv[1], kv[0]))[:20]
            topic.entity_ranks[etype] = ranked
    return hierarchy


def _evaluate(hierarchy, corpus, affinity, entity_types, seed=1):
    """Phrase / entity / topic intrusion scores for one hierarchy."""
    scores: Dict[str, float] = {}
    phrase_groups = hierarchy_phrase_groups(hierarchy)
    questions = generate_intrusion_questions(phrase_groups, NUM_QUESTIONS,
                                             seed=seed)
    scores["phrase"] = run_intrusion_task(questions, corpus, noise=NOISE,
                                          seed=seed, affinity=affinity)
    for etype in entity_types:
        # Entities carry topical signal at the first level (venues and
        # news entities are area/story-scoped); deeper sibling groups
        # share entities by construction.  Questions use 4 options drawn
        # from the top-4 because topics have only 3-4 true entities of
        # each type (the paper's 20-venue DBLP had the same constraint).
        groups = hierarchy_entity_groups(hierarchy, etype,
                                         max_parent_level=0, top_k=4)
        questions = generate_intrusion_questions(
            groups, NUM_QUESTIONS, entity_type=etype,
            options_per_question=4, top_k=4, seed=seed)
        scores[etype] = run_intrusion_task(questions, corpus, noise=NOISE,
                                           seed=seed, affinity=affinity)
    topic_questions = generate_topic_intrusion_questions(
        hierarchy, NUM_QUESTIONS // 2, candidates_per_question=3, seed=seed)
    scores["topic"] = run_topic_intrusion_task(
        topic_questions, corpus, noise=0.02, seed=seed, affinity=affinity)
    return scores


def _run_dataset(dataset, num_children, entity_types):
    corpus = dataset.corpus
    affinity = LabelAffinity(corpus)
    results: Dict[str, Dict[str, float]] = {}

    cathyhin = build_decorated_hierarchy(corpus, num_children, seed=0)
    results["CATHYHIN"] = _evaluate(cathyhin, corpus, affinity,
                                    entity_types)

    cathyhin1 = build_decorated_hierarchy(corpus, num_children,
                                          max_phrase_tokens=1, seed=0)
    results["CATHYHIN1"] = _evaluate(cathyhin1, corpus, affinity,
                                     entity_types)

    cathy = build_decorated_hierarchy(corpus, num_children,
                                      entity_types=[], seed=0)
    results["CATHY"] = _evaluate(cathy, corpus, affinity, [])

    cathy1 = build_decorated_hierarchy(corpus, num_children,
                                       entity_types=[],
                                       max_phrase_tokens=1, seed=0)
    results["CATHY1"] = _evaluate(cathy1, corpus, affinity, [])

    heuristic = build_decorated_hierarchy(corpus, num_children,
                                          entity_types=[], seed=0)
    _heuristic_entity_rankings(heuristic, corpus, entity_types)
    results["CATHYheurHIN"] = _evaluate(heuristic, corpus, affinity,
                                        entity_types)

    netclus_phrase = _netclus_hierarchy(corpus, num_children, seed=0,
                                        with_phrases=True)
    results["NetClus(pattern)"] = _evaluate(netclus_phrase, corpus,
                                            affinity, entity_types)

    netclus = _netclus_hierarchy(corpus, num_children, seed=0,
                                 with_phrases=False)
    results["NetClus"] = _evaluate(netclus, corpus, affinity,
                                   entity_types)
    return results


def _emit(name, results, entity_types):
    columns = ["phrase"] + entity_types + ["topic"]
    lines = [fmt_row("method", columns)]
    for method, scores in results.items():
        lines.append(fmt_row(method,
                             [scores.get(col, float("nan"))
                              for col in columns]))
    lines.append("")
    lines.append("paper: CATHYHIN best everywhere; phrases beat unigrams;")
    lines.append("       NetClus phrase intrusion far below CATHY family")
    report(name, lines)


def test_table_3_5_dblp(benchmark, dblp):
    results = benchmark.pedantic(
        _run_dataset, args=(dblp, [6, 3], ["venue", "author"]),
        rounds=1, iterations=1)
    _emit("table_3_5_dblp", results, ["venue", "author"])
    assert results["CATHYHIN"]["phrase"] >= \
        results["CATHYHIN1"]["phrase"] - 0.05
    assert results["CATHYHIN"]["phrase"] > \
        results["NetClus"]["phrase"]
    assert results["CATHY"]["phrase"] >= results["CATHY1"]["phrase"] - 0.05


def test_table_3_5_news(benchmark, news16):
    results = benchmark.pedantic(
        _run_dataset, args=(news16, [8, 2], ["location", "person"]),
        rounds=1, iterations=1)
    _emit("table_3_5_news", results, ["location", "person"])
    assert results["CATHYHIN"]["phrase"] > results["NetClus"]["phrase"]
