"""Figure 4.2 — mutual information MI_K vs K on a labeled corpus.

Paper result (arXiv physics titles, k=5): KERT-pur is by far the worst;
KERT-pop is close to the kpRel/kpRelInt* baselines; KERT-pop+pur beats
everything (> 20% improvement for K in [100, 600]); full KERT matches
KERT-pop+pur closely.

The labeled substrate here is the synthetic DBLP corpus (labels = leaf
topics), which plays the arXiv role: documents with ground-truth category
labels.
"""

from typing import Dict, List, Tuple

from repro.baselines import KpRelRanker, LDAGibbs
from repro.eval import mutual_information_at_k
from repro.phrases import KERT, KERTConfig, mine_frequent_phrases

from conftest import fmt_row, report

KS = (25, 50, 100, 200, 400)


def _rankings_with_scores(dataset, seed=0):
    corpus = dataset.corpus
    lda = LDAGibbs(num_topics=6, iterations=25, seed=seed).fit(
        [d.tokens for d in corpus], len(corpus.vocabulary))
    model = lda.to_flat()
    counts = mine_frequent_phrases(corpus, min_support=5)

    def kert(**kwargs) -> List[List[Tuple[str, float]]]:
        return KERT(KERTConfig(min_support=5, **kwargs)).rank_strings(
            corpus, model, counts=counts, top_k=max(KS))

    methods: Dict[str, List[List[Tuple[str, float]]]] = {
        "KERT": kert(),
        "KERT-pop-only": kert(use_purity=False, use_concordance=False,
                              use_completeness=False),
        "KERT-pur-only": kert(use_popularity=False, use_concordance=False,
                              use_completeness=False),
        "KERT-pop+pur": kert(use_concordance=False,
                             use_completeness=False),
        "kpRel": KpRelRanker().rank_strings(corpus, model, counts=counts,
                                            top_k=max(KS)),
        "kpRelInt*": KpRelRanker(interestingness=True).rank_strings(
            corpus, model, counts=counts, top_k=max(KS)),
    }
    return corpus, methods


def test_fig_4_2_mutual_information(benchmark, dblp):
    corpus, methods = _rankings_with_scores(dblp)

    def run():
        return {name: [mutual_information_at_k(corpus, rankings, k=k)
                       for k in KS]
                for name, rankings in methods.items()}

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("method", [f"MI@{k}" for k in KS])]
    for name, values in sorted(curves.items(),
                               key=lambda kv: -kv[1][-1]):
        lines.append(fmt_row(name, values))
    lines.append("paper: KERT-pur-only worst by far; KERT-pop+pur beats "
                 "baselines by >20%; KERT ~ KERT-pop+pur")
    report("fig_4_2_mutual_information", lines)

    # The paper's KERTpur gap is widest at small and mid K (Fig. 4.2
    # shows it converging toward the others only at large K).
    mid = {name: values[2] for name, values in curves.items()}
    assert mid["KERT-pur-only"] == min(mid.values())
    final = {name: values[-1] for name, values in curves.items()}
    assert final["KERT-pop+pur"] >= final["kpRel"]
    assert final["KERT-pop+pur"] >= final["kpRelInt*"]
