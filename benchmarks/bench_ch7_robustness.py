"""Sections 7.4.2 / 7.4.3 — robustness and recovery of STROD.

Paper result: STROD returns (near-)identical parameters on every run —
the tensor decomposition is deterministic up to power-method restarts —
while Gibbs LDA and PLSA/EM vary substantially with the random seed.
STROD also recovers interpretable topics matching the planted structure.

Expected reproduction: STROD's run-to-run aligned L1 discrepancy is at
least an order of magnitude below Gibbs's and PLSA's; STROD's recovery
error against the planted topics is small and shrinks with sample size.
"""

from repro.baselines import (LDAGibbs, PLSA, VariationalLDA,
                             docs_to_count_matrix)
from repro.datasets import generate_planted_lda
from repro.eval import pairwise_discrepancy, recovery_error
from repro.strod import STROD

from conftest import fmt_row, report

SEEDS = (0, 1, 2)


def test_ch7_robustness(benchmark):
    planted = generate_planted_lda(num_docs=1500, num_topics=5,
                                   vocab_size=120, doc_length=50, seed=3)

    def run():
        strod_runs = [STROD(num_topics=5, alpha0=1.0, seed=s).fit(
            planted.docs, planted.vocab_size).phi for s in SEEDS]
        gibbs_runs = [LDAGibbs(num_topics=5, iterations=60, seed=s).fit(
            planted.docs, planted.vocab_size).phi for s in SEEDS]
        counts = docs_to_count_matrix(planted.docs, planted.vocab_size)
        plsa_runs = [PLSA(num_topics=5, max_iter=60, seed=s).fit(
            counts).phi for s in SEEDS]
        vb_runs = [VariationalLDA(num_topics=5, em_iterations=20,
                                  seed=s).fit(
            planted.docs, planted.vocab_size).phi for s in SEEDS]
        return {
            "STROD": pairwise_discrepancy(strod_runs),
            "Gibbs LDA": pairwise_discrepancy(gibbs_runs),
            "PLSA": pairwise_discrepancy(plsa_runs),
            "Variational LDA": pairwise_discrepancy(vb_runs),
        }, strod_runs[0]

    discrepancy, strod_phi = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    lines = [fmt_row("method", ["run-to-run L1 discrepancy"])]
    for name, value in discrepancy.items():
        lines.append(fmt_row(name, [value]))
    error = recovery_error(planted.phi, strod_phi)
    lines.append("")
    lines.append(fmt_row("STROD recovery error", [error]))
    lines.append("paper: STROD variance ~0; ML methods vary; STROD "
                 "recovers the planted topics")
    report("ch7_robustness", lines)

    assert discrepancy["STROD"] < 0.1 * discrepancy["Gibbs LDA"]
    assert discrepancy["STROD"] < 0.1 * discrepancy["PLSA"]
    assert discrepancy["STROD"] < discrepancy["Variational LDA"]
    assert error < 0.3


def test_ch7_recovery_vs_sample_size(benchmark):
    """Section 7.3.1's guarantee: error shrinks as samples grow."""
    sizes = (300, 1200, 4800)

    def run():
        errors = {}
        for size in sizes:
            planted = generate_planted_lda(num_docs=size, num_topics=4,
                                           vocab_size=100, doc_length=50,
                                           seed=7)
            model = STROD(num_topics=4,
                          alpha0=float(planted.alpha.sum()),
                          seed=0).fit(planted.docs, planted.vocab_size)
            errors[size] = recovery_error(planted.phi, model.phi)
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("documents", ["recovery L1 error"])]
    for size, value in errors.items():
        lines.append(fmt_row(str(size), [value]))
    lines.append("paper: error bound inversely related to sample size")
    report("ch7_recovery", lines)
    assert errors[4800] < errors[300]
