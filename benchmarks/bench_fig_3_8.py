"""Figure 3.8 — learned link-type weights at different hierarchy levels.

Paper result: on DBLP, the venue-related link types (term-venue,
author-venue) receive high learned weights at the first level — venues
discriminate the six areas — and much lower weights at the second level,
where authors in different subareas publish in the same venues.

Expected reproduction: the ratio (venue-link weight relative to the
geometric-mean-normalized weights) drops from level 1 to level 2.
"""

import numpy as np

from repro.cathy import CathyHIN
from repro.network import build_collapsed_network

from conftest import fmt_row, report


def _venue_weight(alpha):
    venue_weights = [w for lt, w in alpha.items() if "venue" in lt]
    return float(np.mean(venue_weights)) if venue_weights else 0.0


def _run(dataset):
    network = build_collapsed_network(dataset.corpus)
    level1 = CathyHIN(num_topics=6, weight_mode="learn", max_iter=100,
                      seed=0)
    model1 = level1.fit(network)

    # Descend into the largest subtopic and learn level-2 weights.
    z = int(np.argmax(model1.rho))
    subnetwork = level1.subnetwork(z)
    level2 = CathyHIN(num_topics=3, weight_mode="learn", max_iter=100,
                      seed=0)
    model2 = level2.fit(subnetwork)
    return model1.alpha, model2.alpha


def test_fig_3_8_link_weights(benchmark, dblp):
    alpha1, alpha2 = benchmark.pedantic(_run, args=(dblp,), rounds=1,
                                        iterations=1)
    link_types = sorted(set(alpha1) | set(alpha2))
    lines = [fmt_row("link type", ["level 1", "level 2"])]
    for lt in link_types:
        lines.append(fmt_row("-".join(lt),
                             [alpha1.get(lt, float("nan")),
                              alpha2.get(lt, float("nan"))]))
    lines.append("")
    lines.append(fmt_row("mean venue-link weight",
                         [_venue_weight(alpha1), _venue_weight(alpha2)]))
    lines.append("paper: venue links heavily weighted at level 1, "
                 "much less at level 2")
    report("fig_3_8_link_weights", lines)

    assert _venue_weight(alpha1) > _venue_weight(alpha2)
