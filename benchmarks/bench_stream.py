"""Streaming refit cost: incremental (reuse-clean-subtrees) vs full.

The economic claim behind ``repro.stream`` (DESIGN §5.6): when a batch
arrives and the drift detectors fire, patching only the dirty subtrees
must be much cheaper than re-solving the whole tree — that headroom is
what makes refit-on-every-drift viable while serving.  Measured here on
a synthetic stream whose final batch leaves every node clean:

* **full refit** — ``dirty_threshold=0.0``: every node re-runs
  whitening + tensor power (identical to the batch build);
* **incremental refit** — a positive threshold with an up-to-date
  previous tree state: every node reuses its model and only re-assigns
  documents (the fold-in).

Acceptance: at this size the incremental refit is >= 5x faster than
the full refit of the same tree on the same corpus.
"""

import time

import numpy as np

from repro.corpus import Corpus
from repro.stream import StreamRefitter
from repro.strod.hierarchy import STRODTreeConfig

from conftest import fmt_row, report

TREE = STRODTreeConfig(num_children=4, max_depth=2, min_documents=40,
                       num_restarts=3, num_iterations=25)
SEED = 3
MIN_SPEEDUP = 5.0
REPEATS = 3


def _stream_corpus(num_docs=900, words_per_pool=60, num_pools=4,
                   doc_length=10, seed=11):
    """A pool-per-topic synthetic stream, vocab ~ pools x words."""
    rng = np.random.default_rng(seed)
    pools = [[f"w{p}x{i}" for i in range(words_per_pool)]
             for p in range(num_pools)]
    texts = []
    for d in range(num_docs):
        pool = pools[d % num_pools]
        words = [pool[i] for i in
                 rng.integers(0, words_per_pool, size=doc_length)]
        texts.append(" ".join(words) + ".")
    return Corpus.from_texts(texts)


def _prefix(corpus, fraction):
    upto = int(len(corpus) * fraction)
    prefix = Corpus(vocabulary=corpus.vocabulary)
    for doc in list(corpus)[:upto]:
        prefix.add_document(chunks=doc.chunks, entities=doc.entities,
                            year=doc.year, label=doc.label)
    return prefix


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_incremental_refit_speedup(benchmark):
    corpus = _stream_corpus()
    # The tree state as of the last solve: the log minus its newest
    # batch (5% of documents) — the state a drift-triggered refit
    # actually starts from.
    previous = StreamRefitter(TREE, seed=SEED, dirty_threshold=0.0).refit(
        _prefix(corpus, 0.95), None)[1]

    def full():
        refitter = StreamRefitter(TREE, seed=SEED, dirty_threshold=0.0)
        return refitter.refit(corpus, previous)[3]

    def incremental():
        refitter = StreamRefitter(TREE, seed=SEED, dirty_threshold=0.5)
        return refitter.refit(corpus, previous)[3]

    def measure():
        full_s, full_stats = _best_of(full)
        inc_s, inc_stats = _best_of(incremental)
        return full_s, full_stats, inc_s, inc_stats

    full_s, full_stats, inc_s, inc_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    assert full_stats.nodes_solved >= 1
    assert full_stats.nodes_reused == 0
    assert inc_stats.nodes_solved == 0  # 5% growth never crosses 0.5
    assert inc_stats.nodes_reused == full_stats.nodes_solved

    speedup = full_s / inc_s
    report("stream_incremental_refit", [
        fmt_row("refit", ["ms", "solved", "reused"]),
        fmt_row("full (threshold=0.0)",
                [full_s * 1e3, full_stats.nodes_solved,
                 full_stats.nodes_reused]),
        fmt_row("incremental (0.5)",
                [inc_s * 1e3, inc_stats.nodes_solved,
                 inc_stats.nodes_reused]),
        f"corpus: {len(corpus)} documents, "
        f"{len(corpus.vocabulary)} words; tree {TREE.num_children}-ary "
        f"depth {TREE.max_depth}; best of {REPEATS}",
        f"speedup: {speedup:.1f}x (assertion: >= {MIN_SPEEDUP:.0f}x)",
    ])
    assert speedup >= MIN_SPEEDUP, (
        f"incremental refit only {speedup:.1f}x faster than full "
        f"(floor {MIN_SPEEDUP:.0f}x)")
