"""Shared method drivers for the Chapter 3 benches.

Each driver returns one topic representation per discovered topic:
``{node type: ranked name list}`` — the common currency of the HPMI and
intrusion evaluations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines import NetClus
from repro.cathy import BuilderConfig, CathyHIN, HierarchyBuilder
from repro.corpus import Corpus
from repro.datasets import SyntheticDataset
from repro.eval import top_frequency_topic
from repro.hierarchy import TopicalHierarchy
from repro.network import TERM_TYPE, build_collapsed_network
from repro.phrases import attach_entity_rankings, attach_phrases

TopicRep = Dict[str, List[str]]


ENTITY_TOP_K = {"venue": 3, "person": 3, "location": 4}


def cathyhin_topics(dataset: SyntheticDataset, num_topics: int,
                    weight_mode: object, entity_types: Sequence[str],
                    top_k: int = 20, seed: int = 0) -> List[TopicRep]:
    """One-level CATHYHIN clustering -> per-topic type rankings."""
    network = build_collapsed_network(dataset.corpus)
    model = CathyHIN(num_topics=num_topics, weight_mode=weight_mode,
                     max_iter=100, seed=seed).fit(network)
    topics = []
    for z in range(num_topics):
        rep: TopicRep = {TERM_TYPE: model.top_nodes(TERM_TYPE, z, top_k)}
        for etype in entity_types:
            rep[etype] = model.top_nodes(
                etype, z, ENTITY_TOP_K.get(etype, top_k))
        topics.append(rep)
    return topics


def netclus_topics(dataset: SyntheticDataset, num_topics: int,
                   entity_types: Sequence[str], top_k: int = 20,
                   seed: int = 0, smoothing: float = 0.3) -> List[TopicRep]:
    """NetClus clustering -> per-cluster type rankings."""
    model = NetClus(num_clusters=num_topics, smoothing=smoothing,
                    seed=seed).fit(dataset.corpus)
    topics = []
    for z in range(num_topics):
        rep: TopicRep = {TERM_TYPE: model.top_nodes(TERM_TYPE, z, top_k)}
        for etype in entity_types:
            rep[etype] = model.top_nodes(
                etype, z, ENTITY_TOP_K.get(etype, top_k))
        topics.append(rep)
    return topics


def topk_topics(dataset: SyntheticDataset, num_topics: int,
                entity_types: Sequence[str],
                top_k: int = 20) -> List[TopicRep]:
    """The TopK pseudo-topic baseline, replicated per topic slot."""
    baseline = top_frequency_topic(dataset.corpus, entity_types,
                                   top_k=top_k)
    return [dict(baseline) for _ in range(num_topics)]


def build_decorated_hierarchy(corpus: Corpus,
                              num_children,
                              weight_mode: object = "learn",
                              max_phrase_tokens=None,
                              seed: int = 0,
                              entity_types=None) -> TopicalHierarchy:
    """Full CATHYHIN hierarchy with phrases and entity rankings."""
    network = build_collapsed_network(corpus, entity_types=entity_types)
    builder = HierarchyBuilder(
        BuilderConfig(num_children=num_children,
                      max_depth=len(num_children)
                      if isinstance(num_children, (list, tuple)) else 1,
                      weight_mode=weight_mode, max_iter=80), seed=seed)
    hierarchy = builder.build(network)
    attach_phrases(hierarchy, corpus, max_phrase_tokens=max_phrase_tokens)
    attach_entity_rankings(hierarchy)
    return hierarchy
