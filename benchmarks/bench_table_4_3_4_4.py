"""Tables 4.3 and 4.4 — KERT criteria ablation and nKQM@K.

Table 4.3 (qualitative): top-10 phrases of the Machine Learning topic per
method; KERT-pop is noise, kpRel favors unigrams, KERT-pur favors long
phrases.

Table 4.4 (nKQM@K, simulated judges standing in for the 10 CS graduate
students):

    paper ordering: KERT-pop 0.26 < kpRelInt* 0.35 < KERT-con 0.36
                    < kpRel 0.39 < KERT-com 0.49 < KERT 0.50
                    < KERT-pur 0.58          (values at K=10)

Expected reproduction: KERT-pop worst; KERT and KERT-com above both
baselines; KERT-pur at or near the top.
"""

from typing import Dict, List

from repro.baselines import KpRelRanker, LDAGibbs
from repro.eval import SimulatedPhraseJudge, judge_phrases, nkqm_at_k
from repro.phrases import KERT, KERTConfig, mine_frequent_phrases

from conftest import fmt_row, report

PAPER_NKQM10 = {
    "KERT-pop": 0.2701, "kpRelInt*": 0.3730, "KERT-con": 0.3616,
    "kpRel": 0.4030, "KERT-com": 0.4932, "KERT": 0.4962,
    "KERT-pur": 0.5642,
}


def _method_rankings(dataset, seed=0) -> Dict[str, List[List[str]]]:
    corpus = dataset.corpus
    lda = LDAGibbs(num_topics=6, iterations=25, seed=seed).fit(
        [d.tokens for d in corpus], len(corpus.vocabulary))
    model = lda.to_flat()
    counts = mine_frequent_phrases(corpus, min_support=5)

    def kert(**kwargs):
        ranker = KERT(KERTConfig(min_support=5, **kwargs))
        return ranker.rank_strings(corpus, model, counts=counts, top_k=20)

    methods: Dict[str, List[List[str]]] = {}
    methods["KERT"] = [[p for p, _ in t] for t in kert()]
    methods["KERT-pop"] = [[p for p, _ in t]
                           for t in kert(use_popularity=False)]
    methods["KERT-pur"] = [[p for p, _ in t]
                           for t in kert(use_purity=False)]
    methods["KERT-con"] = [[p for p, _ in t]
                           for t in kert(use_concordance=False)]
    methods["KERT-com"] = [[p for p, _ in t]
                           for t in kert(use_completeness=False)]
    methods["kpRel"] = [
        [p for p, _ in t] for t in KpRelRanker().rank_strings(
            corpus, model, counts=counts, top_k=20)]
    methods["kpRelInt*"] = [
        [p for p, _ in t] for t in KpRelRanker(
            interestingness=True).rank_strings(corpus, model,
                                               counts=counts, top_k=20)]
    return methods


def test_table_4_3_qualitative(benchmark, dblp):
    methods = benchmark.pedantic(_method_rankings, args=(dblp,),
                                 rounds=1, iterations=1)
    # Show the topic most like "machine learning" per method (the topic
    # whose top phrases contain 'learning').
    lines = []
    for name, rankings in methods.items():
        ml_topic = max(rankings, key=lambda t: sum(
            1 for p in t[:10] if "learning" in p or "kernel" in p))
        lines.append(f"{name:<12}: " + " / ".join(ml_topic[:8]))
    report("table_4_3_kert_variants", lines)

    # kpRel favors unigrams; KERT-pur favors longer phrases.
    def mean_length(rankings):
        phrases = [p for t in rankings for p in t[:10]]
        return sum(len(p.split()) for p in phrases) / max(len(phrases), 1)

    assert mean_length(methods["kpRel"]) < mean_length(methods["KERT-pur"])


def test_table_4_4_nkqm(benchmark, dblp):
    methods = _method_rankings(dblp)
    judges = [SimulatedPhraseJudge(dblp.ground_truth, noise=0.5, seed=s)
              for s in (0, 1, 2)]
    pool = sorted({p for rankings in methods.values()
                   for t in rankings for p in t})
    judged = judge_phrases(pool, judges)

    def run():
        return {name: {k: nkqm_at_k(rankings, judged, k=k)
                       for k in (5, 10, 20)}
                for name, rankings in methods.items()}

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("method", ["nKQM@5", "nKQM@10", "nKQM@20",
                                "paper@10"])]
    for name in sorted(scores, key=lambda m: scores[m][10]):
        lines.append(fmt_row(name, [scores[name][5], scores[name][10],
                                    scores[name][20],
                                    PAPER_NKQM10[name]]))
    report("table_4_4_nkqm", lines)

    at10 = {m: s[10] for m, s in scores.items()}
    assert at10["KERT-pop"] == min(at10.values())
    assert at10["KERT"] > at10["kpRelInt*"]
    assert at10["KERT-pur"] >= at10["kpRel"]
