"""Serving-layer latency: cold loads, artifact formats, concurrency.

Exports a model fitted on the synthetic DBLP corpus, then measures

* cold start: ``load_model`` + index build + first ``top_phrases`` query,
* warm path: the same query answered from the engine's LRU cache,
* HTTP overhead: p50/p99 round-trip latency against a live server —
  client-observed, cross-checked against the server's own
  ``serve.http.latency`` quantile sketch as scraped from ``/metrics``
  in Prometheus text format,
* v1 vs v2 cold load on a deliberately large synthetic model — the v2
  zero-copy path must amortize the JSON parse away,
* concurrent p99 against the threaded and asyncio servers under a
  multi-threaded client (recorded, not asserted: absolute numbers are
  machine-dependent).

Acceptance: a warm-cache ``top_phrases`` query must be >= 10x faster
than a cold artifact load, and a v2 cold load must be >= 10x faster
than the v1 cold load of the same model.
"""

import concurrent.futures
import json
import os
import statistics
import time
import urllib.request
import zlib

import repro
from repro.core import LatentEntityMiner, MinerConfig
from repro.serve import (ModelAsyncServer, ModelQueryEngine, ModelServer,
                         load_model, save_model_document, vocabulary_hash)

from conftest import fmt_row, report

WARM_QUERIES = 2_000
HTTP_REQUESTS = 200
CONCURRENT_CLIENTS = 6
REQUESTS_PER_CLIENT = 30


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _canonical(model) -> bytes:
    return json.dumps(model, sort_keys=True, allow_nan=False,
                      separators=(",", ":")).encode("utf-8")


def synthetic_document(num_terms=20_000, num_children=8,
                       phrases_per_topic=1_200, num_authors=6_000,
                       ranks_per_topic=1_500, roles_per_author=9):
    """A large, deterministic, numerics-heavy v1 model document.

    The fitted test corpus is tiny; cold-load differences only become
    visible on a model whose numeric payload (phi rows, entity ranks,
    role frequencies) dominates its string tables — the regime v2 is
    designed for, and the regime production models live in.
    """
    vocabulary = [f"term{i:05d}" for i in range(num_terms)]
    authors = [f"author{i:05d}" for i in range(num_authors)]

    def topic_record(path, notation, child_index):
        phi = {vocabulary[i]: (i % 997 + 1) / 997.0
               for i in range(num_terms)}
        phrases = [[f"t{child_index} phrase {i:05d}",
                    (phrases_per_topic - i) / phrases_per_topic]
                   for i in range(phrases_per_topic)]
        ranks = [[authors[(i * 7 + child_index) % num_authors],
                  (ranks_per_topic - i) / ranks_per_topic]
                 for i in range(ranks_per_topic)]
        return {"path": path, "notation": notation, "rho": 0.25,
                "phi": {"term": phi}, "phrases": phrases,
                "entity_ranks": {"author": ranks}, "children": []}

    root = topic_record([], "o", 0)
    notations = ["o"]
    for child in range(num_children):
        notation = f"o/{child + 1}"
        root["children"].append(
            topic_record([child], notation, child + 1))
        notations.append(notation)
    entity_roles = {"author": {
        name: {notations[(i + j) % len(notations)]: float(j + 1)
               for j in range(roles_per_author)}
        for i, name in enumerate(authors)}}
    model = {"vocabulary": vocabulary, "hierarchy": root,
             "entity_roles": entity_roles}
    model = json.loads(_canonical(model).decode("utf-8"))
    manifest = {
        "schema": "repro.serve/model/v1",
        "created_unix": time.time(),
        "repro_version": repro.get_version(),
        "config": {},
        "vocab_hash": vocabulary_hash(model["vocabulary"]),
        "payload_crc32": zlib.crc32(_canonical(model)) & 0xFFFFFFFF,
        "vocab_size": len(vocabulary),
        "num_documents": 0,
        "num_topics": 1 + num_children,
        "entity_types": ["author"],
    }
    return {"schema": "repro.serve/model/v1", "manifest": manifest,
            "model": model}


def test_serve_cold_vs_warm(benchmark, dblp, tmp_path):
    miner = LatentEntityMiner(MinerConfig(num_children=3, max_depth=1),
                              seed=0)
    result = miner.fit(dblp.corpus)
    path = str(tmp_path / "model.json")
    miner.save_model(result, path)

    def cold():
        engine = ModelQueryEngine(load_model(path))
        engine.top_phrases("o/1", 10)

    def measure():
        cold_s = _time(cold)
        engine = ModelQueryEngine(load_model(path))
        engine.top_phrases("o/1", 10)  # prime the cache
        total = _time(lambda: [engine.top_phrases("o/1", 10)
                               for _ in range(WARM_QUERIES)])
        return cold_s, total / WARM_QUERIES

    cold_s, warm_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = cold_s / max(warm_s, 1e-12)

    # HTTP round trips against a live server (same artifact).
    engine = ModelQueryEngine(load_model(path))
    latencies = []
    with ModelServer(engine, port=0) as server:
        server.start()
        base = f"http://{server.host}:{server.port}"
        url = f"{base}/v1/topics/o/1"
        for _ in range(HTTP_REQUESTS):
            start = time.perf_counter()
            with urllib.request.urlopen(url, timeout=10) as response:
                json.loads(response.read())
            latencies.append(time.perf_counter() - start)
        # The server's own view: quantile sketch via Prometheus text.
        metrics_url = f"{base}/metrics?format=prometheus"
        with urllib.request.urlopen(metrics_url, timeout=10) as response:
            prometheus = response.read().decode()
    server_quantiles = {}
    for line in prometheus.splitlines():
        if line.startswith('repro_serve_http_latency_seconds{quantile='):
            q = line.split('"')[1]
            server_quantiles[q] = float(line.rsplit(None, 1)[1])
    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[int(len(latencies) * 0.99) - 1]

    report("serve_query_latency", [
        fmt_row("path", ["seconds", "speedup"]),
        fmt_row("cold load + first query", [cold_s, 1.0]),
        fmt_row("warm cached query", [warm_s, speedup]),
        "",
        fmt_row("http round trip", ["p50_ms", "p99_ms"]),
        fmt_row(f"GET /v1/topics/o/1 x{HTTP_REQUESTS} (client)",
                [p50 * 1e3, p99 * 1e3]),
        fmt_row("server sketch (/metrics summary)",
                [server_quantiles.get("0.5", 0.0) * 1e3,
                 server_quantiles.get("0.99", 0.0) * 1e3]),
        f"corpus={len(dblp.corpus)} docs, "
        f"topics={result.hierarchy.num_topics}, "
        f"warm sample={WARM_QUERIES} queries",
        "acceptance: warm cached top_phrases >= 10x faster than cold load",
    ])
    assert speedup >= 10.0


def test_serve_cold_load_v1_vs_v2(benchmark, tmp_path):
    """v2 zero-copy cold load vs v1 JSON parse on a large model."""
    document = synthetic_document()
    v1_path = str(tmp_path / "model.json")
    v2_path = str(tmp_path / "model.rmv2")
    save_model_document(document, v1_path)
    save_model_document(document, v2_path, format="v2")
    v1_bytes = os.path.getsize(v1_path)
    v2_bytes = os.path.getsize(v2_path)

    def cold(path, **kwargs):
        def run():
            model = load_model(path, **kwargs)
            try:
                engine = ModelQueryEngine(model)
                engine.top_phrases("o/1", 10)
            finally:
                if hasattr(model, "close"):
                    model.close()
        return run

    def measure():
        v1_s = _time(cold(v1_path))
        v2_s = _time(cold(v2_path))
        v2_noverify_s = _time(cold(v2_path, verify_sections=False))
        return v1_s, v2_s, v2_noverify_s

    v1_s, v2_s, v2_noverify_s = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1)
    speedup = v1_s / max(v2_s, 1e-12)
    speedup_noverify = v1_s / max(v2_noverify_s, 1e-12)

    report("serve_cold_load_v1_vs_v2", [
        fmt_row("artifact", ["bytes", "cold_load_s", "speedup"]),
        fmt_row("v1 json", [v1_bytes, v1_s, 1.0]),
        fmt_row("v2 mmap (verify_sections)", [v2_bytes, v2_s, speedup]),
        fmt_row("v2 mmap (header only)",
                [v2_bytes, v2_noverify_s, speedup_noverify]),
        f"model: {document['manifest']['num_topics']} topics, "
        f"{document['manifest']['vocab_size']} terms, "
        f"{len(document['model']['entity_roles']['author'])} authors",
        "cold load = load_model + engine build + first top_phrases query",
        "acceptance: v2 cold load >= 10x faster than v1 cold load",
    ])
    assert speedup >= 10.0


def test_serve_concurrent_p99(benchmark, tmp_path):
    """Concurrent client p99 against threaded vs asyncio servers."""
    document = synthetic_document(num_terms=4_000, num_authors=2_000)
    v2_path = str(tmp_path / "model.rmv2")
    save_model_document(document, v2_path, format="v2")

    paths = ["/v1/topics/o/1?phrases=5&terms=5",
             "/v1/search?q=t3%20phrase&mode=prefix&limit=10",
             "/v1/search?q=phrase%200004&mode=substring&limit=10",
             "/v1/entities/author00042?type=author"]

    def hammer(server):
        base = f"http://{server.host}:{server.port}"

        def client(worker):
            latencies = []
            for i in range(REQUESTS_PER_CLIENT):
                url = base + paths[(worker + i) % len(paths)]
                start = time.perf_counter()
                with urllib.request.urlopen(url, timeout=30) as response:
                    assert response.status == 200
                    response.read()
                latencies.append(time.perf_counter() - start)
            return latencies

        with concurrent.futures.ThreadPoolExecutor(
                max_workers=CONCURRENT_CLIENTS) as pool:
            rounds = list(pool.map(client, range(CONCURRENT_CLIENTS)))
        latencies = sorted(x for chunk in rounds for x in chunk)
        p50 = statistics.median(latencies)
        p99 = latencies[int(len(latencies) * 0.99) - 1]
        return p50, p99

    def measure():
        with ModelServer(ModelQueryEngine(load_model(v2_path)),
                         port=0) as threaded:
            threaded.start()
            threaded_p50, threaded_p99 = hammer(threaded)
        engine = ModelQueryEngine(load_model(v2_path), phrase_shards=4)
        with ModelAsyncServer(engine, port=0) as aio:
            aio.start()
            aio_p50, aio_p99 = hammer(aio)
        return threaded_p50, threaded_p99, aio_p50, aio_p99

    t50, t99, a50, a99 = benchmark.pedantic(measure, rounds=1,
                                            iterations=1)
    total = CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT
    report("serve_concurrent_p99", [
        fmt_row("server", ["p50_ms", "p99_ms"]),
        fmt_row("threaded (1 shard)", [t50 * 1e3, t99 * 1e3]),
        fmt_row("asyncio (4 shards)", [a50 * 1e3, a99 * 1e3]),
        f"load: {CONCURRENT_CLIENTS} client threads x "
        f"{REQUESTS_PER_CLIENT} requests = {total} per server, "
        f"mixed topic/search/entity endpoints",
        "recorded for trend tracking; no latency assertion "
        "(machine-dependent)",
    ])
