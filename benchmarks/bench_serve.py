"""Serving-layer latency: artifact cold load vs warm cached queries.

Exports a model fitted on the synthetic DBLP corpus, then measures

* cold start: ``load_model`` + index build + first ``top_phrases`` query,
* warm path: the same query answered from the engine's LRU cache,
* HTTP overhead: p50/p99 round-trip latency against a live server —
  client-observed, cross-checked against the server's own
  ``serve.http.latency`` quantile sketch as scraped from ``/metrics``
  in Prometheus text format.

Acceptance: a warm-cache ``top_phrases`` query must be >= 10x faster
than a cold artifact load (the point of the read-optimized indexes and
the result cache is that startup cost is paid once).
"""

import json
import statistics
import time
import urllib.request

from repro.core import LatentEntityMiner, MinerConfig
from repro.serve import ModelQueryEngine, ModelServer, load_model

from conftest import fmt_row, report

WARM_QUERIES = 2_000
HTTP_REQUESTS = 200


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_serve_cold_vs_warm(benchmark, dblp, tmp_path):
    miner = LatentEntityMiner(MinerConfig(num_children=3, max_depth=1),
                              seed=0)
    result = miner.fit(dblp.corpus)
    path = str(tmp_path / "model.json")
    miner.save_model(result, path)

    def cold():
        engine = ModelQueryEngine(load_model(path))
        engine.top_phrases("o/1", 10)

    def measure():
        cold_s = _time(cold)
        engine = ModelQueryEngine(load_model(path))
        engine.top_phrases("o/1", 10)  # prime the cache
        total = _time(lambda: [engine.top_phrases("o/1", 10)
                               for _ in range(WARM_QUERIES)])
        return cold_s, total / WARM_QUERIES

    cold_s, warm_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = cold_s / max(warm_s, 1e-12)

    # HTTP round trips against a live server (same artifact).
    engine = ModelQueryEngine(load_model(path))
    latencies = []
    with ModelServer(engine, port=0) as server:
        server.start()
        base = f"http://{server.host}:{server.port}"
        url = f"{base}/v1/topics/o/1"
        for _ in range(HTTP_REQUESTS):
            start = time.perf_counter()
            with urllib.request.urlopen(url, timeout=10) as response:
                json.loads(response.read())
            latencies.append(time.perf_counter() - start)
        # The server's own view: quantile sketch via Prometheus text.
        metrics_url = f"{base}/metrics?format=prometheus"
        with urllib.request.urlopen(metrics_url, timeout=10) as response:
            prometheus = response.read().decode()
    server_quantiles = {}
    for line in prometheus.splitlines():
        if line.startswith('repro_serve_http_latency_seconds{quantile='):
            q = line.split('"')[1]
            server_quantiles[q] = float(line.rsplit(None, 1)[1])
    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[int(len(latencies) * 0.99) - 1]

    report("serve_query_latency", [
        fmt_row("path", ["seconds", "speedup"]),
        fmt_row("cold load + first query", [cold_s, 1.0]),
        fmt_row("warm cached query", [warm_s, speedup]),
        "",
        fmt_row("http round trip", ["p50_ms", "p99_ms"]),
        fmt_row(f"GET /v1/topics/o/1 x{HTTP_REQUESTS} (client)",
                [p50 * 1e3, p99 * 1e3]),
        fmt_row("server sketch (/metrics summary)",
                [server_quantiles.get("0.5", 0.0) * 1e3,
                 server_quantiles.get("0.99", 0.0) * 1e3]),
        f"corpus={len(dblp.corpus)} docs, "
        f"topics={result.hierarchy.num_topics}, "
        f"warm sample={WARM_QUERIES} queries",
        "acceptance: warm cached top_phrases >= 10x faster than cold load",
    ])
    assert speedup >= 10.0
