"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench prints a paper-vs-measured table and persists it under
``benchmarks/results/`` so the comparison survives pytest's output
capture.  Datasets are generated once per session.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable

import pytest

from repro.datasets import (DBLPConfig, NewsConfig, generate_dblp,
                            generate_dblp_area, generate_news,
                            generate_news_subset)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Wall-time of every bench that ran this session, keyed by pytest nodeid.
_DURATIONS: Dict[str, float] = {}


def pytest_runtest_logreport(report) -> None:
    """Collect per-bench wall-times for the machine-readable summary."""
    if report.when == "call":
        _DURATIONS[report.nodeid] = report.duration


def pytest_sessionfinish(session, exitstatus) -> None:
    """Persist collected wall-times to ``results/timings.json``."""
    if not _DURATIONS:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "timings.json")
    merged: Dict[str, float] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                merged = json.load(handle).get("timings", {})
        except (OSError, ValueError):
            merged = {}
    merged.update(_DURATIONS)
    with open(path, "w") as handle:
        json.dump({"schema": "repro.obs/bench-timings/v1",
                   "generated_unix": time.time(),
                   "timings": merged}, handle, indent=2)
        handle.write("\n")


def report(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(["=" * 72, name, "=" * 72, *lines, ""])
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def fmt_row(label: str, values, width: int = 12) -> str:
    """One aligned table row: label + formatted numeric cells."""
    cells = []
    for value in values:
        if isinstance(value, float):
            cells.append(f"{value:>{width}.3f}")
        else:
            cells.append(f"{str(value):>{width}}")
    return f"{label:<28}" + "".join(cells)


@pytest.fixture(scope="session")
def dblp():
    """The '20 conferences' stand-in: all six areas."""
    return generate_dblp(DBLPConfig(max_authors=150), seed=3)


@pytest.fixture(scope="session")
def dblp_db_area():
    """The 'Database area' stand-in: one area, its subareas as topics."""
    return generate_dblp_area(0, DBLPConfig(max_authors=150), seed=3)


@pytest.fixture(scope="session")
def dblp_relations():
    """Larger network for relation mining (more advising history)."""
    return generate_dblp(DBLPConfig(max_authors=300), seed=7)


@pytest.fixture(scope="session")
def news16():
    return generate_news(NewsConfig(num_stories=16, articles_per_story=60),
                         seed=5)


@pytest.fixture(scope="session")
def news4():
    return generate_news_subset(
        seed=5, config=NewsConfig(articles_per_story=80))
