"""Table 3.4 — dataset / network statistics.

The paper reports node and link counts for the constructed DBLP and NEWS
networks (e.g. DBLP: 6,998 terms / 12,886 authors / 20 venues with 693k
term-term links).  Our synthetic corpora are smaller by design; the bench
reports the same statistics table for the generated datasets.
"""

from repro.network import build_collapsed_network, network_statistics

from conftest import fmt_row, report


def _stats_lines(name, dataset):
    network = build_collapsed_network(dataset.corpus)
    stats = network_statistics(network)
    lines = [f"{name}: documents={len(dataset.corpus)}, "
             f"vocabulary={len(dataset.corpus.vocabulary)}"]
    lines.append(fmt_row("node type", ["count"]))
    for node_type, count in sorted(stats["nodes"].items()):
        lines.append(fmt_row(node_type, [count]))
    lines.append(fmt_row("link type", ["pairs", "weight"]))
    for link_type, info in sorted(stats["links"].items()):
        lines.append(fmt_row(link_type, [info["pairs"],
                                         info["weight"]]))
    return lines, stats


def test_table_3_4_statistics(benchmark, dblp, news16):
    def run():
        dblp_lines, dblp_stats = _stats_lines("DBLP (synthetic)", dblp)
        news_lines, news_stats = _stats_lines("NEWS (synthetic)", news16)
        return dblp_lines + [""] + news_lines, dblp_stats, news_stats

    lines, dblp_stats, news_stats = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    report("table_3_4_statistics", lines)
    # Same structural shape as the paper's networks.
    assert set(dblp_stats["nodes"]) == {"author", "term", "venue"}
    assert set(news_stats["nodes"]) == {"location", "person", "term"}
    assert "term-term" in dblp_stats["links"]
    # Venue-venue links cannot exist (one venue per paper).
    assert "venue-venue" not in dblp_stats["links"]
    assert "location-location" in news_stats["links"]
