"""Section 6.2.4 — supervised hierarchical-relation learning.

Paper result: with labeled training pairs, the CRF with unified potential
functions beats both the unsupervised TPFG and an independent pairwise
classifier; accuracy grows with the amount of training data.

Expected reproduction: CRF(50% train) >= classifier(50% train) >= TPFG on
held-out advisees, and CRF accuracy non-decreasing in training fraction.
"""

import numpy as np

from repro.relations import (CollaborationNetwork, HierarchicalRelationCRF,
                             SupervisedPairClassifier, TPFG,
                             build_candidate_graph, evaluate_predictions)

from conftest import fmt_row, report

TRAIN_FRACTIONS = (0.125, 0.25, 0.5)


def test_ch6_supervised(benchmark, dblp_relations):
    dataset = dblp_relations
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    graph = build_candidate_graph(network)
    truth = {r.advisee: r.advisor for r in dataset.ground_truth.advising}
    advisees = sorted(truth)
    rng = np.random.default_rng(0)
    rng.shuffle(advisees)
    half = len(advisees) // 2
    test_truth = {a: truth[a] for a in advisees[half:]}
    train_pool = advisees[:half]

    def run():
        tpfg = TPFG(max_iter=15).fit(graph)
        tpfg_acc = evaluate_predictions(tpfg.predictions(),
                                        test_truth).advisee_accuracy
        crf_curve = {}
        for fraction in TRAIN_FRACTIONS:
            size = max(int(len(advisees) * fraction), 5)
            train = {a: truth[a] for a in train_pool[:size]}
            crf = HierarchicalRelationCRF(epochs=200, seed=0)
            crf.fit(network, graph, train)
            crf_curve[fraction] = evaluate_predictions(
                crf.predict(network, graph).predictions(),
                test_truth).advisee_accuracy
        train = {a: truth[a] for a in train_pool}
        classifier = SupervisedPairClassifier(seed=0).fit(network, graph,
                                                          train)
        classifier_acc = evaluate_predictions(
            classifier.predict(network, graph).predictions(),
            test_truth).advisee_accuracy
        return tpfg_acc, crf_curve, classifier_acc

    tpfg_acc, crf_curve, classifier_acc = benchmark.pedantic(
        run, rounds=1, iterations=1)
    lines = [fmt_row("method", ["held-out advisee acc"]),
             fmt_row("TPFG (unsupervised)", [tpfg_acc]),
             fmt_row("pair classifier (50%)", [classifier_acc])]
    for fraction, acc in crf_curve.items():
        lines.append(fmt_row(f"CRF ({fraction:.0%} train)", [acc]))
    lines.append("paper: CRF best; accuracy grows with training data; "
                 "classifier without structure below CRF")
    report("ch6_supervised", lines)

    best_crf = crf_curve[max(TRAIN_FRACTIONS)]
    assert best_crf >= tpfg_acc
    assert best_crf >= classifier_acc - 0.05
    assert crf_curve[0.5] >= crf_curve[0.125] - 0.05
