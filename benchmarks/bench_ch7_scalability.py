"""Section 7.4.1 — scalability of STROD vs ML inference.

Paper result: STROD is orders of magnitude faster than Gibbs-sampled LDA
and variational/EM methods (hundreds of iterations vs a single pass plus
a k-dimensional tensor decomposition), and scales near-linearly in the
corpus size.

Expected reproduction: STROD at least ~5x faster than a 100-iteration
Gibbs run at every size, with the gap widening as the corpus grows, and
STROD's own runtime growing near-linearly.
"""

import os
import time

from repro.baselines import (LDAGibbs, PLSA, VariationalLDA,
                             docs_to_count_matrix)
from repro.cathy import BuilderConfig, HierarchyBuilder
from repro.datasets import generate_planted_lda
from repro.network import build_collapsed_network
from repro.strod import STROD

from conftest import fmt_row, report

SIZES = (300, 600, 1200)
NUM_TOPICS = 5
VOCAB = 150
GIBBS_ITERATIONS = 40


def test_ch7_scalability(benchmark):
    corpora = {size: generate_planted_lda(
        num_docs=size, num_topics=NUM_TOPICS, vocab_size=VOCAB,
        doc_length=50, seed=2) for size in SIZES}

    def run():
        rows = []
        for size, planted in corpora.items():
            start = time.perf_counter()
            STROD(num_topics=NUM_TOPICS, alpha0=1.0, seed=0).fit(
                planted.docs, planted.vocab_size)
            strod_time = time.perf_counter() - start

            start = time.perf_counter()
            LDAGibbs(num_topics=NUM_TOPICS,
                     iterations=GIBBS_ITERATIONS, seed=0).fit(
                planted.docs, planted.vocab_size)
            gibbs_time = time.perf_counter() - start

            start = time.perf_counter()
            PLSA(num_topics=NUM_TOPICS, max_iter=60, seed=0).fit(
                docs_to_count_matrix(planted.docs, planted.vocab_size))
            plsa_time = time.perf_counter() - start

            start = time.perf_counter()
            VariationalLDA(num_topics=NUM_TOPICS, em_iterations=20,
                           seed=0).fit(planted.docs, planted.vocab_size)
            vb_time = time.perf_counter() - start
            rows.append((size, strod_time, gibbs_time, plsa_time,
                         vb_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("documents", ["STROD (s)", "Gibbs (s)", "PLSA (s)",
                                   "VB (s)", "Gibbs/STROD"])]
    for size, strod_time, gibbs_time, plsa_time, vb_time in rows:
        lines.append(fmt_row(str(size),
                             [strod_time, gibbs_time, plsa_time, vb_time,
                              gibbs_time / max(strod_time, 1e-9)]))
    lines.append("paper: STROD orders of magnitude faster than "
                 "Gibbs/variational; near-linear scaling")
    report("ch7_scalability", lines)

    for size, strod_time, gibbs_time, _, vb_time in rows:
        assert gibbs_time > 5 * strod_time
        assert vb_time > strod_time
    # Near-linear STROD scaling: 4x documents < ~12x time.
    assert rows[-1][1] / max(rows[0][1], 1e-9) < 12


def test_ch7_scalability_in_k(benchmark):
    """STROD cost grows mildly with k (k^3 tensor work is tiny)."""
    planted = generate_planted_lda(num_docs=800, num_topics=8,
                                   vocab_size=200, doc_length=50, seed=4)

    def run():
        timings = {}
        for k in (3, 5, 8):
            start = time.perf_counter()
            STROD(num_topics=k, alpha0=1.0, seed=0).fit(
                planted.docs, planted.vocab_size)
            timings[k] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("k", ["STROD (s)"])]
    for k, value in timings.items():
        lines.append(fmt_row(str(k), [value]))
    report("ch7_scalability_in_k", lines)
    assert timings[8] < timings[3] * 20


WORKER_COUNTS = (1, 2, 4)


def test_ch7_hierarchy_workers(benchmark, dblp):
    """Workers axis: CATHY hierarchy construction on the process backend.

    Sibling subtrees and EM restarts fan out over ``repro.parallel``;
    per-task seeds are spawned deterministically in the parent, so every
    worker count must build the bit-identical hierarchy.  The >= 2x
    speedup assertion only binds on machines with >= 4 cores — the
    process backend cannot beat serial on a single-core box, but the
    determinism contract must hold everywhere.
    """
    network = build_collapsed_network(dblp.corpus)

    def build(workers):
        config = BuilderConfig(num_children=[6, 3], max_depth=2,
                               weight_mode="learn", max_iter=60,
                               restarts=2, workers=workers)
        return HierarchyBuilder(config, seed=0).build(network)

    def run():
        timings = {}
        hierarchies = {}
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            hierarchies[workers] = build(workers)
            timings[workers] = time.perf_counter() - start
        return timings, hierarchies

    timings, hierarchies = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    serial_time = timings[1]
    lines = [fmt_row("workers", ["wall (s)", "speedup"])]
    for workers in WORKER_COUNTS:
        lines.append(fmt_row(str(workers),
                             [timings[workers],
                              serial_time / max(timings[workers], 1e-9)]))
    lines.append(f"cores={cores}; determinism: identical hierarchies "
                 "for every worker count")
    report("ch7_hierarchy_workers", lines)

    reference = hierarchies[1].to_json()
    for workers in WORKER_COUNTS[1:]:
        assert hierarchies[workers].to_json() == reference
    if cores >= 4:
        assert serial_time / max(timings[4], 1e-9) >= 2.0
