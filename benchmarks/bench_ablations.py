"""Design-choice ablations called out in DESIGN.md.

* ToPMine merge threshold alpha and minimum support mu: the significance
  threshold controls over-merging; on the synthetic corpus the separation
  between true in-phrase merges (sig ~10) and corpus-association merges
  (sig <8) is measurable, so recall of planted phrases peaks at moderate
  alpha and precision rises with it.
* STROD tensor power budget (restarts L, iterations N): recovery error
  and robustness as a function of the budget.
"""

import numpy as np

from repro.datasets import generate_planted_lda
from repro.eval import pairwise_discrepancy, recovery_error
from repro.phrases import mine_frequent_phrases, segment_corpus
from repro.strod import STROD

from conftest import fmt_row, report


def _planted_phrase_ids(dataset):
    vocab = dataset.corpus.vocabulary
    truth = dataset.ground_truth
    planted = set()
    for path in truth.paths:
        for phrase in truth.normalized_phrases(path):
            words = phrase.split()
            if len(words) >= 2 and all(w in vocab for w in words):
                planted.add(tuple(vocab.id_of(w) for w in words))
    return planted


def test_ablation_topmine_threshold(benchmark, dblp):
    corpus = dblp.corpus
    planted = _planted_phrase_ids(dblp)
    counts = mine_frequent_phrases(corpus, min_support=5)

    def run():
        rows = []
        for alpha in (1.0, 2.0, 4.0, 8.0, 16.0):
            partitions = segment_corpus(corpus, counts, alpha=alpha)
            segmented = {p for part in partitions for p in part
                         if len(p) >= 2}
            recall = len(planted & segmented) / max(len(planted), 1)
            precision = len(planted & segmented) / max(len(segmented), 1)
            mean_len = float(np.mean([len(p) for part in partitions
                                      for p in part]))
            rows.append((alpha, recall, precision, mean_len))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("alpha", ["recall", "precision", "mean unit len"])]
    for alpha, recall, precision, mean_len in rows:
        lines.append(fmt_row(str(alpha), [recall, precision, mean_len]))
    lines.append("low alpha over-merges (long units, low precision); "
                 "high alpha under-merges (recall drops)")
    report("ablation_topmine_threshold", lines)

    precisions = [r[2] for r in rows]
    assert precisions == sorted(precisions)  # precision rises with alpha
    assert rows[0][3] > rows[-1][3]          # unit length shrinks


def test_ablation_topmine_support(benchmark, dblp):
    corpus = dblp.corpus
    planted = _planted_phrase_ids(dblp)

    def run():
        rows = []
        for support in (3, 5, 10, 25, 60):
            counts = mine_frequent_phrases(corpus, min_support=support)
            multi = [p for p in counts.counts if len(p) >= 2]
            recall = sum(1 for p in planted if p in counts) / \
                max(len(planted), 1)
            rows.append((support, len(multi), recall))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("min support", ["multiword phrases", "recall"])]
    for support, num_phrases, recall in rows:
        lines.append(fmt_row(str(support), [num_phrases, recall]))
    lines.append("paper: larger support -> more precision, less recall")
    report("ablation_topmine_support", lines)

    counts_col = [r[1] for r in rows]
    assert counts_col == sorted(counts_col, reverse=True)


def test_ablation_strod_budget(benchmark):
    planted = generate_planted_lda(num_docs=1200, num_topics=5,
                                   vocab_size=100, doc_length=50, seed=9)

    def run():
        rows = []
        for restarts, iterations in ((1, 5), (3, 10), (10, 30)):
            phis = []
            for seed in (0, 1, 2):
                model = STROD(num_topics=5, alpha0=1.0,
                              num_restarts=restarts,
                              num_iterations=iterations,
                              seed=seed).fit(planted.docs,
                                             planted.vocab_size)
                phis.append(model.phi)
            rows.append((restarts, iterations,
                         recovery_error(planted.phi, phis[0]),
                         pairwise_discrepancy(phis)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("L x N", ["recovery error", "run discrepancy"])]
    for restarts, iterations, error, discrepancy in rows:
        lines.append(fmt_row(f"{restarts} x {iterations}",
                             [error, discrepancy]))
    lines.append("larger power-method budgets stabilize the "
                 "decomposition (Section 7.3.1)")
    report("ablation_strod_budget", lines)

    assert rows[-1][3] <= rows[0][3] + 1e-6
