"""Figures 4.3 / 4.4 / 4.5 — phrase intrusion, topical coherence, and
phrase quality across the five mining methods.

Paper result (ACL + 20Conf datasets):

    Fig 4.3 (intrusion, /10):  ToPMine ~ KERT  >  Turbo  >  TNG ~ PD-LDA
    Fig 4.4 (coherence z):     ToPMine best, PD-LDA/TNG negative
    Fig 4.5 (quality z):       ToPMine best; KERT *lowest* (unigram
                               appending hurts quality despite intrusion)

Expected reproduction: ToPMine at or near the top of all three; TNG and
PD-LDA at the bottom of intrusion and coherence.
"""

from typing import Dict, List

import numpy as np

from repro.baselines import LDAGibbs, PDLDA, TNG, TurboTopics
from repro.eval import (LabelAffinity, SimulatedPhraseJudge,
                        coherence_score, generate_intrusion_questions,
                        phrase_quality_score, run_intrusion_task, z_scores)
from repro.phrases import (KERT, KERTConfig, ToPMine, ToPMineConfig,
                           mine_frequent_phrases, render_phrase)

from conftest import fmt_row, report

NUM_TOPICS = 6


def _method_phrase_lists(dataset, seed=0) -> Dict[str, List[List[str]]]:
    """Top-10 phrase strings per topic for each method."""
    corpus = dataset.corpus
    lists: Dict[str, List[List[str]]] = {}

    topmine = ToPMine(ToPMineConfig(num_topics=NUM_TOPICS,
                                    lda_iterations=80,
                                    merge_threshold=8.0), seed=seed)
    result = topmine.fit(corpus)
    lists["ToPMine"] = [result.top_phrases(t, 10, corpus)
                        for t in range(NUM_TOPICS)]

    lda = LDAGibbs(num_topics=NUM_TOPICS, iterations=40, seed=seed).fit(
        [d.tokens for d in corpus], len(corpus.vocabulary))
    counts = mine_frequent_phrases(corpus, min_support=5)
    kert = KERT(KERTConfig(min_support=5)).rank_strings(
        corpus, lda.to_flat(), counts=counts, top_k=10)
    lists["KERT"] = [[p for p, _ in topic] for topic in kert]

    tng = TNG(num_topics=NUM_TOPICS, iterations=30, seed=seed).fit(corpus)
    lists["TNG"] = [
        [render_phrase(p, corpus.vocabulary) for p, _ in topic[:10]]
        for topic in tng.topical_phrases()]

    turbo = TurboTopics(num_topics=NUM_TOPICS, iterations=30,
                        permutations=15, seed=seed).fit(corpus)
    lists["Turbo"] = [
        [render_phrase(p, corpus.vocabulary) for p, _ in topic[:10]]
        for topic in turbo.topical_phrases()]

    pdlda = PDLDA(num_topics=NUM_TOPICS, iterations=40, seed=seed).fit(
        corpus)
    lists["PDLDA"] = [
        [render_phrase(p, corpus.vocabulary) for p, _ in topic[:10]]
        for topic in pdlda.topical_phrases()]
    return lists


def test_fig_4_3_4_4_4_5(benchmark, dblp):
    corpus = dblp.corpus
    affinity = LabelAffinity(corpus)
    judge = SimulatedPhraseJudge(dblp.ground_truth, noise=0.0, seed=0)
    rng = np.random.default_rng(0)

    def run():
        lists = _method_phrase_lists(dblp)
        intrusion: Dict[str, float] = {}
        coherence: Dict[str, List[float]] = {}
        quality: Dict[str, List[float]] = {}
        for name, topics in lists.items():
            questions = generate_intrusion_questions([topics], 40, seed=1)
            intrusion[name] = run_intrusion_task(
                questions, corpus, noise=0.05, seed=2, affinity=affinity)
            coherence[name] = [coherence_score(topic, affinity, noise=0.3,
                                               rng=rng)
                               for topic in topics]
            quality[name] = [phrase_quality_score(topic, judge, noise=0.3,
                                                  rng=rng)
                             for topic in topics]
        return intrusion, z_scores(coherence), z_scores(quality)

    intrusion, coherence_z, quality_z = benchmark.pedantic(
        run, rounds=1, iterations=1)
    lines = [fmt_row("method", ["intrusion", "coherence z", "quality z"])]
    for name in sorted(intrusion, key=lambda m: -intrusion[m]):
        lines.append(fmt_row(name, [intrusion[name], coherence_z[name],
                                    quality_z[name]]))
    lines.append("paper: ToPMine ~ KERT top intrusion; ToPMine best "
                 "coherence and quality; TNG/PDLDA lowest intrusion")
    report("fig_4_3_4_4_4_5_interpretability", lines)

    # Deviations documented in EXPERIMENTS.md: (1) our PD-LDA stand-in
    # reuses ToPMine's segmentation machinery, so it does not collapse
    # on intrusion the way the original does; (2) ToPMine's intrusion on
    # this synthetic corpus trails KERT because the area-level LDA
    # resolution leaves 1-2 cross-area phrases per list -- the paper
    # found them comparable on real text.  The robust reproductions are:
    # KERT top-tier intrusion, ToPMine best-tier quality/coherence, TNG
    # worst quality.
    assert intrusion["KERT"] == max(intrusion.values())
    assert coherence_z["ToPMine"] >= coherence_z["TNG"]
    assert quality_z["ToPMine"] > quality_z["TNG"]
    assert quality_z["ToPMine"] > 0
    assert quality_z["TNG"] == min(quality_z.values())
