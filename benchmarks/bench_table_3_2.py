"""Table 3.2 — HPMI on DBLP (20 conferences + Database area).

Paper result (overall HPMI, higher is better):

    DBLP (20 conf):   TopK -0.09 < NetClus 0.40 < CATHYHIN(equal) 0.69
                      < CATHYHIN(norm) 0.76 < CATHYHIN(learn) 0.92
    DBLP (DB area):   TopK -0.08 < NetClus 0.03 < CATHYHIN(norm) 0.32
                      < CATHYHIN(equal) 0.40 < CATHYHIN(learn) 0.52

Expected reproduction: the same winner (CATHYHIN with learned weights)
and the same gross ordering TopK < NetClus < CATHYHIN variants; absolute
values differ (synthetic corpus, smoothed empirical PMI).
"""

import pytest

from repro.eval import CooccurrenceStatistics, hpmi_table

from _methods import cathyhin_topics, netclus_topics, topk_topics
from conftest import fmt_row, report

LINK_TYPES = [("term", "term"), ("author", "term"), ("author", "author"),
              ("term", "venue"), ("author", "venue")]
ENTITY_TYPES = ["author", "venue"]

PAPER_OVERALL_20CONF = {
    "TopK": -0.0903, "NetClus": 0.4045, "CATHYHIN (equal)": 0.6949,
    "CATHYHIN (norm)": 0.7601, "CATHYHIN (learn)": 0.9168,
}
PAPER_OVERALL_DB = {
    "TopK": -0.0761, "NetClus": 0.0260, "CATHYHIN (equal)": 0.3994,
    "CATHYHIN (norm)": 0.3196, "CATHYHIN (learn)": 0.5205,
}


def _run_dataset(dataset, num_topics):
    stats = CooccurrenceStatistics(dataset.corpus)
    methods = {
        "TopK": topk_topics(dataset, num_topics, ENTITY_TYPES),
        "NetClus": netclus_topics(dataset, num_topics, ENTITY_TYPES),
        "CATHYHIN (equal)": cathyhin_topics(dataset, num_topics, "equal",
                                            ENTITY_TYPES),
        "CATHYHIN (norm)": cathyhin_topics(dataset, num_topics, "norm",
                                           ENTITY_TYPES),
        "CATHYHIN (learn)": cathyhin_topics(dataset, num_topics, "learn",
                                            ENTITY_TYPES),
    }
    rows = {}
    for name, topics in methods.items():
        rows[name] = hpmi_table(stats, topics, LINK_TYPES, top_k=20,
                                top_k_overrides={"venue": 3})
    return rows


def _emit(name, rows, paper_overall):
    header = fmt_row("method", ["-".join(lt) for lt in LINK_TYPES]
                     + ["overall", "paper"])
    lines = [header]
    for method, table in rows.items():
        values = [table["-".join(lt)] for lt in LINK_TYPES]
        values.append(table["overall"])
        values.append(paper_overall[method])
        lines.append(fmt_row(method, values))
    report(name, lines)


def test_table_3_2_dblp_20conf(benchmark, dblp):
    rows = benchmark.pedantic(_run_dataset, args=(dblp, 6),
                              rounds=1, iterations=1)
    _emit("table_3_2_dblp_20conf", rows, PAPER_OVERALL_20CONF)
    overall = {m: t["overall"] for m, t in rows.items()}
    assert overall["TopK"] == min(overall.values())
    assert overall["CATHYHIN (learn)"] > overall["NetClus"]
    assert overall["CATHYHIN (equal)"] > overall["NetClus"]


def test_table_3_2_dblp_db_area(benchmark, dblp_db_area):
    rows = benchmark.pedantic(_run_dataset, args=(dblp_db_area, 3),
                              rounds=1, iterations=1)
    _emit("table_3_2_dblp_db_area", rows, PAPER_OVERALL_DB)
    overall = {m: t["overall"] for m, t in rows.items()}
    assert overall["CATHYHIN (learn)"] > overall["TopK"]
    assert overall["CATHYHIN (learn)"] > overall["NetClus"]
