"""Micro-benchmarks for the vectorized solver kernels.

Times the two CATHY hot kernels — the Eq. 3.5 posterior link split and
the Eq. 3.7 M-step scatter — against the original per-link / per-subtopic
loop implementations kept in ``tests/reference_kernels.py``.

Problem sizes are environment-tunable so CI can run a seconds-long smoke
pass (``REPRO_BENCH_EDGES=2000``) while the default configuration
reproduces the acceptance measurement: the vectorized posterior split
must be >= 10x faster than the reference loop at 1e5 edges.

Each kernel invocation runs under a profiled span, so the report ends
with a self-time/RSS breakdown (see :mod:`repro.obs.profile`) — the
same table ``repro fit --profile`` produces for a full run.
"""

import os
import sys
import time

import numpy as np

import repro.obs as obs

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tests"))

from reference_kernels import (reference_posterior_link_split,
                               reference_scatter)

from repro.cathy.em import (flat_scatter_index, posterior_link_split,
                            scatter_expectations)

from conftest import fmt_row, report

EDGES = int(os.environ.get("REPRO_BENCH_EDGES", 100_000))
NODES = int(os.environ.get("REPRO_BENCH_NODES", 2_000))
TOPICS = int(os.environ.get("REPRO_BENCH_TOPICS", 5))

#: The acceptance threshold only binds at the full problem size; the CI
#: smoke pass shrinks EDGES and asserts plain correctness instead.
FULL_SIZE = 100_000


def _time(fn, repeats: int = 3, span_name: str = None) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        if span_name is None:
            fn()
        else:
            with obs.span(span_name):
                fn()
        best = min(best, time.perf_counter() - start)
    return best


def _profiled_rows(names):
    """Self-time/CPU/RSS rows for this test's spans, report-formatted."""
    rows = [row for row in obs.top_spans(obs.get_spans())
            if row["name"] in names]
    lines = [fmt_row("span", ["self_s", "cpu_s", "peak_rss_mb"])]
    for row in rows:
        lines.append(fmt_row(row["name"], [
            row["self_s"], row["cpu_s"],
            row.get("rss_peak_bytes", 0) / 1e6]))
    return lines


def _problem(rng):
    phi = rng.dirichlet(np.ones(NODES), size=TOPICS)
    rho = rng.uniform(0.5, 2.0, size=TOPICS)
    i_idx = rng.integers(0, NODES, size=EDGES)
    j_idx = rng.integers(0, NODES, size=EDGES)
    weights = rng.uniform(0.1, 3.0, size=EDGES)
    return rho, phi, i_idx, j_idx, weights


def test_hotpath_posterior_link_split(benchmark):
    rho, phi, i_idx, j_idx, weights = _problem(np.random.default_rng(0))
    obs.configure(profile=True)

    def run():
        fast = _time(lambda: posterior_link_split(
            rho, phi, i_idx, j_idx, weights, counter=None),
            span_name="bench.split.vectorized")
        slow = _time(lambda: reference_posterior_link_split(
            rho, phi, i_idx, j_idx, weights), repeats=1,
            span_name="bench.split.reference")
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_posterior_link_split", [
        fmt_row("kernel", ["seconds", "speedup"]),
        fmt_row("vectorized (k,E) pass", [fast, 1.0]),
        fmt_row("reference per-link loop", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.split.vectorized",
                        "bench.split.reference"}) + [
        f"edges={EDGES} nodes={NODES} topics={TOPICS}",
        "acceptance: >= 10x at 1e5 edges",
    ])
    assert np.max(np.abs(
        posterior_link_split(rho, phi, i_idx, j_idx, weights, counter=None)
        - reference_posterior_link_split(rho, phi, i_idx, j_idx, weights)
    )) <= 1e-12
    if EDGES >= FULL_SIZE:
        assert speedup >= 10.0


def test_hotpath_scatter(benchmark):
    rng = np.random.default_rng(1)
    expected = rng.uniform(0.0, 2.0, size=(TOPICS, EDGES))
    i_idx = rng.integers(0, NODES, size=EDGES)
    j_idx = rng.integers(0, NODES, size=EDGES)
    # The EM precomputes the flat indices once per fit; time the hot path.
    flat_idx = (flat_scatter_index(i_idx, NODES, TOPICS),
                flat_scatter_index(j_idx, NODES, TOPICS))
    obs.configure(profile=True)

    def run():
        fast = _time(lambda: scatter_expectations(
            expected, i_idx, j_idx, NODES, flat_idx=flat_idx),
            span_name="bench.scatter.bincount")
        slow = _time(lambda: reference_scatter(
            expected, i_idx, j_idx, NODES),
            span_name="bench.scatter.reference")
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_scatter", [
        fmt_row("kernel", ["seconds", "speedup"]),
        fmt_row("bincount over (k*V)", [fast, 1.0]),
        fmt_row("reference np.add.at loop", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.scatter.bincount",
                        "bench.scatter.reference"}) + [
        f"edges={EDGES} nodes={NODES} topics={TOPICS}",
    ])
    assert np.max(np.abs(
        scatter_expectations(expected, i_idx, j_idx, NODES, flat_idx=flat_idx)
        - reference_scatter(expected, i_idx, j_idx, NODES))) <= 1e-12
    # numpy >= 1.24 gives np.add.at a fast path, so the win here is the
    # amortized index; assert parity rather than a large margin.
    assert fast <= slow * 1.5
