"""Micro-benchmarks for the vectorized solver kernels.

Times the two CATHY hot kernels — the Eq. 3.5 posterior link split and
the Eq. 3.7 M-step scatter — against the original per-link / per-subtopic
loop implementations kept in ``tests/reference_kernels.py``.

Problem sizes are environment-tunable so CI can run a seconds-long smoke
pass (``REPRO_BENCH_EDGES=2000``) while the default configuration
reproduces the acceptance measurement: the vectorized posterior split
must be >= 10x faster than the reference loop at 1e5 edges.

Each kernel invocation runs under a profiled span, so the report ends
with a self-time/RSS breakdown (see :mod:`repro.obs.profile`) — the
same table ``repro fit --profile`` produces for a full run.
"""

import os
import sys
import time

import numpy as np

import repro.obs as obs

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tests"))

from reference_kernels import (ReferenceDictNetwork, legacy_gibbs_sweep,
                               reference_posterior_link_split,
                               reference_scatter, reference_segment_chunk)

from repro.baselines.lda_gibbs import LDAGibbs
from repro.cathy.em import (flat_scatter_index, posterior_link_split,
                            scatter_expectations)
from repro.network import HeterogeneousNetwork
from repro.phrases import (make_merge_scorer,
                           mine_frequent_phrases_from_chunks, segment_chunk)

from conftest import fmt_row, report

EDGES = int(os.environ.get("REPRO_BENCH_EDGES", 100_000))
NODES = int(os.environ.get("REPRO_BENCH_NODES", 2_000))
TOPICS = int(os.environ.get("REPRO_BENCH_TOPICS", 5))
GIBBS_DOCS = int(os.environ.get("REPRO_BENCH_DOCS", 300))
CHUNKS = int(os.environ.get("REPRO_BENCH_CHUNKS", 600))

#: The acceptance thresholds only bind at the full problem sizes; the CI
#: smoke pass shrinks the knobs and asserts plain correctness instead.
FULL_SIZE = 100_000
FULL_DOCS = 300
FULL_CHUNKS = 600

#: Per-kernel wall-time sanity bound: even the CI smoke sizes must keep
#: every *fast* kernel well under this, so a silently-degraded hot path
#: (e.g. an accidental reference fallback) fails the build on timing too.
SANITY_SECONDS = float(os.environ.get("REPRO_BENCH_SANITY_S", 10.0))


def _time(fn, repeats: int = 3, span_name: str = None) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        if span_name is None:
            fn()
        else:
            with obs.span(span_name):
                fn()
        best = min(best, time.perf_counter() - start)
    return best


def _profiled_rows(names):
    """Self-time/CPU/RSS rows for this test's spans, report-formatted."""
    rows = [row for row in obs.top_spans(obs.get_spans())
            if row["name"] in names]
    lines = [fmt_row("span", ["self_s", "cpu_s", "peak_rss_mb"])]
    for row in rows:
        lines.append(fmt_row(row["name"], [
            row["self_s"], row["cpu_s"],
            row.get("rss_peak_bytes", 0) / 1e6]))
    return lines


def _problem(rng):
    phi = rng.dirichlet(np.ones(NODES), size=TOPICS)
    rho = rng.uniform(0.5, 2.0, size=TOPICS)
    i_idx = rng.integers(0, NODES, size=EDGES)
    j_idx = rng.integers(0, NODES, size=EDGES)
    weights = rng.uniform(0.1, 3.0, size=EDGES)
    return rho, phi, i_idx, j_idx, weights


def test_hotpath_posterior_link_split(benchmark):
    rho, phi, i_idx, j_idx, weights = _problem(np.random.default_rng(0))
    obs.configure(profile=True)

    def run():
        fast = _time(lambda: posterior_link_split(
            rho, phi, i_idx, j_idx, weights, counter=None),
            span_name="bench.split.vectorized")
        slow = _time(lambda: reference_posterior_link_split(
            rho, phi, i_idx, j_idx, weights), repeats=1,
            span_name="bench.split.reference")
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_posterior_link_split", [
        fmt_row("kernel", ["seconds", "speedup"]),
        fmt_row("vectorized (k,E) pass", [fast, 1.0]),
        fmt_row("reference per-link loop", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.split.vectorized",
                        "bench.split.reference"}) + [
        f"edges={EDGES} nodes={NODES} topics={TOPICS}",
        "acceptance: >= 10x at 1e5 edges",
    ])
    assert np.max(np.abs(
        posterior_link_split(rho, phi, i_idx, j_idx, weights, counter=None)
        - reference_posterior_link_split(rho, phi, i_idx, j_idx, weights)
    )) <= 1e-12
    if EDGES >= FULL_SIZE:
        assert speedup >= 10.0


def test_hotpath_scatter(benchmark):
    rng = np.random.default_rng(1)
    expected = rng.uniform(0.0, 2.0, size=(TOPICS, EDGES))
    i_idx = rng.integers(0, NODES, size=EDGES)
    j_idx = rng.integers(0, NODES, size=EDGES)
    # The EM precomputes the flat indices once per fit; time the hot path.
    flat_idx = (flat_scatter_index(i_idx, NODES, TOPICS),
                flat_scatter_index(j_idx, NODES, TOPICS))
    obs.configure(profile=True)

    def run():
        fast = _time(lambda: scatter_expectations(
            expected, i_idx, j_idx, NODES, flat_idx=flat_idx),
            span_name="bench.scatter.bincount")
        slow = _time(lambda: reference_scatter(
            expected, i_idx, j_idx, NODES),
            span_name="bench.scatter.reference")
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_scatter", [
        fmt_row("kernel", ["seconds", "speedup"]),
        fmt_row("bincount over (k*V)", [fast, 1.0]),
        fmt_row("reference np.add.at loop", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.scatter.bincount",
                        "bench.scatter.reference"}) + [
        f"edges={EDGES} nodes={NODES} topics={TOPICS}",
    ])
    assert np.max(np.abs(
        scatter_expectations(expected, i_idx, j_idx, NODES, flat_idx=flat_idx)
        - reference_scatter(expected, i_idx, j_idx, NODES))) <= 1e-12
    # numpy >= 1.24 gives np.add.at a fast path, so the win here is the
    # amortized index; assert parity rather than a large margin.
    assert fast <= slow * 1.5


def _gibbs_state(rng, num_topics, vocab):
    """Initial sampler state over GIBBS_DOCS random token documents."""
    units = [[(int(tok),) for tok in rng.integers(0, vocab, size=60)]
             for _ in range(GIBBS_DOCS)]
    n_dk = np.zeros((len(units), num_topics), dtype=np.int64)
    n_kw = np.zeros((num_topics, vocab), dtype=np.int64)
    n_k = np.zeros(num_topics, dtype=np.int64)
    assignments = []
    for d, doc_units in enumerate(units):
        labels = rng.integers(0, num_topics, size=len(doc_units))
        assignments.append(labels)
        for unit, z in zip(doc_units, labels):
            n_dk[d, z] += len(unit)
            n_k[z] += len(unit)
            for w in unit:
                n_kw[z, w] += 1
    return units, assignments, n_dk, n_kw, n_k


def _copy_state(state):
    units, assignments, n_dk, n_kw, n_k = state
    return (units, [a.copy() for a in assignments], n_dk.copy(),
            n_kw.copy(), n_k.copy())


def test_hotpath_gibbs_sweep(benchmark):
    """Blocked list-kernel sweep vs the per-unit ``Generator.choice`` loop.

    The timing baseline is the verbatim legacy sweep; bit-identity is
    checked against the retained in-library reference sweep (which shares
    the fast kernel's draw contract).
    """
    num_topics, vocab = 8, 1_000
    state = _gibbs_state(np.random.default_rng(2), num_topics, vocab)
    sampler = LDAGibbs(num_topics=num_topics, alpha=0.1, beta=0.01,
                       iterations=1)
    beta_sum = sampler.beta * vocab
    # tracemalloc profiling (enabled by the CATHY benches above) hooks
    # every allocation, which penalizes interpreter-level kernels ~10x
    # while leaving numpy-heavy ones almost untouched; the interpreter
    # benches time with it off so the comparison stays honest.
    obs.set_profiling_enabled(False)

    def run():
        fast_state = _copy_state(state)
        fast = _time(lambda: sampler._sweep(
            *_copy_state(state), beta_sum, np.random.default_rng(7)),
            span_name="bench.gibbs.blocked")
        slow = _time(lambda: legacy_gibbs_sweep(
            *_copy_state(state), alpha=sampler.alpha, beta=sampler.beta,
            beta_sum=beta_sum, rng=np.random.default_rng(7)), repeats=1,
            span_name="bench.gibbs.legacy")
        return fast, slow, fast_state

    fast, slow, fast_state = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_gibbs_sweep", [
        fmt_row("kernel", ["seconds", "speedup"]),
        fmt_row("blocked list kernel", [fast, 1.0]),
        fmt_row("legacy choice-per-unit", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.gibbs.blocked", "bench.gibbs.legacy"}) + [
        f"docs={GIBBS_DOCS} vocab={vocab} topics={num_topics}",
        "acceptance: >= 10x at 300 docs x 60 tokens",
    ])

    # Bit-identity vs the retained reference sweep (same draw contract).
    ref_state = _copy_state(state)
    sampler._sweep(*fast_state, beta_sum, np.random.default_rng(7))
    sampler._sweep_reference(*ref_state, beta_sum, np.random.default_rng(7))
    assert all((a == b).all()
               for a, b in zip(fast_state[1], ref_state[1]))
    assert (fast_state[3] == ref_state[3]).all()
    assert fast <= SANITY_SECONDS
    if GIBBS_DOCS >= FULL_DOCS:
        assert speedup >= 10.0


def test_hotpath_network_build(benchmark):
    """Columnwise CSR edge ingest vs per-edge dict accumulation."""
    rng = np.random.default_rng(3)
    i_idx = rng.integers(0, NODES, size=EDGES)
    j_idx = rng.integers(0, NODES, size=EDGES)
    weights = rng.uniform(0.1, 3.0, size=EDGES)
    names = [f"t{n}" for n in range(NODES)]
    edge_rows = list(zip(i_idx.tolist(), j_idx.tolist(), weights.tolist()))
    obs.set_profiling_enabled(False)  # see test_hotpath_gibbs_sweep

    def build_fast():
        network = HeterogeneousNetwork(["term"])
        network.add_nodes("term", names)
        network.add_links("term", i_idx, "term", j_idx, weights)
        network.num_links(("term", "term"))  # force the freeze
        return network

    def build_slow():
        reference = ReferenceDictNetwork()
        for i, j, weight in edge_rows:
            reference.add_link("term", i, "term", j, weight)
        return reference

    def run():
        fast = _time(build_fast, span_name="bench.network.columnwise")
        slow = _time(build_slow, repeats=1,
                     span_name="bench.network.dict")
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_network_build", [
        fmt_row("build path", ["seconds", "speedup"]),
        fmt_row("columnwise CSR freeze", [fast, 1.0]),
        fmt_row("per-edge dict inserts", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.network.columnwise",
                        "bench.network.dict"}) + [
        f"edges={EDGES} nodes={NODES}",
        "acceptance: >= 5x at 1e5 edges",
    ])

    network, reference = build_fast(), build_slow()
    assert abs(network.total_weight(("term", "term"))
               - reference.total_weight(("term", "term"))) <= 1e-6
    assert network.num_links(("term", "term")) == \
        len(reference.links[("term", "term")])
    probe_i, probe_j = int(i_idx[0]), int(j_idx[0])
    assert network.link_weight("term", probe_i, "term", probe_j) > 0
    assert fast <= SANITY_SECONDS
    if EDGES >= FULL_SIZE:
        assert speedup >= 5.0


def test_hotpath_topmine_merge(benchmark):
    """Lazy-invalidation heap segmentation vs the rescanning merge."""
    rng = np.random.default_rng(4)
    # Zipfian tokens over long chunks: heavy repetition drives many
    # merges per chunk, which is exactly where the rescan's O(n^2)
    # behaviour separates from the heap's O(n log n).
    chunks = [np.minimum(rng.zipf(1.2, size=rng.integers(60, 200)),
                         60).tolist()
              for _ in range(CHUNKS)]
    counts = mine_frequent_phrases_from_chunks(
        chunks, min_support=3, max_length=6,
        num_tokens=sum(len(c) for c in chunks))
    alpha = 0.5
    obs.set_profiling_enabled(False)  # see test_hotpath_gibbs_sweep

    def segment_fast():
        scorer = make_merge_scorer(counts)
        result = [segment_chunk(chunk, counts, alpha=alpha, scorer=scorer)
                  for chunk in chunks]
        scorer.flush()
        return result

    def segment_slow():
        return [reference_segment_chunk(chunk, counts, alpha=alpha)
                for chunk in chunks]

    def run():
        fast = _time(segment_fast, span_name="bench.topmine.heap")
        slow = _time(segment_slow, repeats=1,
                     span_name="bench.topmine.rescan")
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = slow / max(fast, 1e-9)
    report("hotpath_topmine_merge", [
        fmt_row("merge strategy", ["seconds", "speedup"]),
        fmt_row("lazy-invalidation heap", [fast, 1.0]),
        fmt_row("rescanning reference", [slow, speedup]),
        "",
    ] + _profiled_rows({"bench.topmine.heap", "bench.topmine.rescan"}) + [
        f"chunks={CHUNKS} phrases={len(counts)} alpha={alpha}",
        "acceptance: >= 5x at 600 long chunks (10x the unit-test corpus)",
    ])

    for chunk in chunks[:50]:
        assert segment_chunk(chunk, counts, alpha=alpha) == \
            reference_segment_chunk(chunk, counts, alpha=alpha)
    assert fast <= SANITY_SECONDS
    if CHUNKS >= FULL_CHUNKS:
        assert speedup >= 5.0


def test_no_kernel_fallbacks_recorded():
    """Guard: the benches above must have run on the fast paths.

    With ``REPRO_REQUIRE_FAST_KERNELS=1`` (the CI perf-smoke setting) any
    fallback raises before reaching here; without it, this assertion
    still fails the run if a hot path silently degraded.
    """
    counters = obs.get_registry().snapshot()["counters"]
    fallbacks = {name: count for name, count in counters.items()
                 if name.startswith("kernel.fallback.")}
    assert not fallbacks, f"reference-path fallbacks recorded: {fallbacks}"
