"""Section 3.2.3 / 3.3.1 — model selection for the number of subtopics.

Paper result: "We use the BIC model selection criterion ... It aligns
with our prior knowledge.  For example, on DBLP (20 conferences), k = 6
and there are 6 actual areas in the data."

Expected reproduction (with a documented deviation): on our synthetic
corpus the root network genuinely contains 18 leaf topics beneath the 6
areas, so BIC keeps improving past k = 6; the *elbow* of the BIC curve
— where the marginal improvement collapses — sits at the true area
count, which is the actionable model-selection signal.  The bench
asserts the elbow, and that k = 6 decisively beats mis-specified small
models.
"""

from repro.cathy import select_num_topics
from repro.network import build_collapsed_network

from conftest import fmt_row, report

TRUE_K = 6


def test_model_selection_bic(benchmark, dblp):
    network = build_collapsed_network(dblp.corpus)
    candidates = [2, 4, 6, 8, 10]

    def run():
        return select_num_topics(network, candidates=candidates,
                                 method="bic", seed=0, max_iter=60)

    best, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    improvements = {candidates[i + 1]: scores[candidates[i]]
                    - scores[candidates[i + 1]]
                    for i in range(len(candidates) - 1)}
    lines = [fmt_row("k", ["BIC (lower better)", "improvement"])]
    for k in candidates:
        marker = " <- selected" if k == best else ""
        lines.append(fmt_row(str(k), [scores[k],
                                      improvements.get(k, float("nan"))])
                     + marker)
    lines.append(f"true number of areas: {TRUE_K}")
    lines.append("paper: BIC selects k = 6 on DBLP; here the elbow sits "
                 "at 6 (the synthetic root also contains 18 leaf "
                 "subtopics, so BIC keeps creeping down past 6)")
    report("model_selection_bic", lines)

    # The true k decisively beats mis-specified small models ...
    assert scores[TRUE_K] < scores[2]
    assert scores[TRUE_K] < scores[4]
    # ... and the marginal improvement collapses past the true k (elbow).
    assert improvements[8] < 0.5 * improvements[4]
