"""Tables 3.6 / 3.7 — qualitative topic representations per method.

Table 3.6 compares the 'information retrieval' topic as produced by
CATHYHIN, CATHY-heuristic-HIN and NetClus(pattern): CATHYHIN finds the
purest entities because it refines topics with entity-entity links.
Table 3.7 does the same for the 'Egypt' NEWS story, where the heuristic
method attaches unreasonable locations to a subtopic.

The bench prints each method's representation of the same planted topic
and quantifies purity as the fraction of top entities whose ground-truth
home area matches the topic's dominant area.
"""

from typing import Dict, List

from repro.eval import LabelAffinity

from _methods import build_decorated_hierarchy
from bench_table_3_5 import _heuristic_entity_rankings, _netclus_hierarchy
from conftest import fmt_row, report


def _entity_purity(topic, truth, entity_type: str, k: int = 5) -> float:
    names = topic.top_entities(entity_type, k)
    areas = [truth.topic_of_entity(entity_type, n) for n in names]
    areas = [a[:1] for a in areas if a is not None]
    if not areas:
        return 0.0
    modal = max(set(areas), key=areas.count)
    return areas.count(modal) / len(areas)


def _pick_ir_like_topic(hierarchy, truth):
    """The level-1 topic whose venues most agree on one area."""
    best, best_purity = hierarchy.root.children[0], -1.0
    for child in hierarchy.root.children:
        purity = _entity_purity(child, truth, "venue", 3)
        if purity > best_purity:
            best, best_purity = child, purity
    return best


def _describe(topic) -> List[str]:
    lines = [f"  phrases: {', '.join(topic.top_phrases(5))}"]
    for etype, ranks in sorted(topic.entity_ranks.items()):
        names = [n for n, _ in ranks[:5]]
        lines.append(f"  {etype}: {', '.join(names)}")
    return lines


def _run(dataset):
    corpus = dataset.corpus
    truth = dataset.ground_truth
    methods: Dict[str, object] = {}
    methods["CATHYHIN"] = build_decorated_hierarchy(corpus, [6, 3], seed=0)
    heuristic = build_decorated_hierarchy(corpus, [6, 3],
                                          entity_types=[], seed=0)
    _heuristic_entity_rankings(heuristic, corpus, ["author", "venue"])
    methods["CATHYheurHIN"] = heuristic
    methods["NetClus(pattern)"] = _netclus_hierarchy(corpus, [6, 3],
                                                     seed=0)
    purities = {}
    lines = []
    for name, hierarchy in methods.items():
        topic = _pick_ir_like_topic(hierarchy, truth)
        lines.append(f"{name}  (topic {topic.notation})")
        lines.extend(_describe(topic))
        purities[name] = {
            "venue": _entity_purity(topic, truth, "venue"),
            "author": _entity_purity(topic, truth, "author"),
        }
        lines.append("")
    lines.append(fmt_row("method", ["venue purity", "author purity"]))
    for name, p in purities.items():
        lines.append(fmt_row(name, [p["venue"], p["author"]]))
    lines.append("paper: CATHYHIN entities purest; heuristic ranking "
                 "mixes interests; NetClus conflates topics")
    return lines, purities


def test_case_study_table_3_6(benchmark, dblp):
    lines, purities = benchmark.pedantic(_run, args=(dblp,), rounds=1,
                                         iterations=1)
    report("case_study_table_3_6", lines)
    assert purities["CATHYHIN"]["author"] >= \
        purities["NetClus(pattern)"]["author"] - 0.05


def test_case_study_table_3_7(benchmark, news16):
    """NEWS worst-case study: subtopic location sensibility."""
    corpus = news16.corpus
    truth = news16.ground_truth

    def run():
        hierarchy = build_decorated_hierarchy(corpus, [16, 2], seed=0)
        affinity = LabelAffinity(corpus)
        lines = []
        worst = None
        for child in hierarchy.root.children:
            lines.append(f"story topic {child.notation}: "
                         f"{', '.join(child.top_phrases(4))}")
            for grand in child.children:
                locations = grand.top_entities("location", 4)
                lines.append(f"  {grand.notation} locations: "
                             f"{', '.join(locations)}")
        return lines, hierarchy

    lines, hierarchy = benchmark.pedantic(run, rounds=1, iterations=1)
    lines.append("paper: CATHYHIN subtopic locations remain sensible for "
                 "the parent story")
    report("case_study_table_3_7", lines)
    # Subtopic locations should mostly match the parent story's area.
    consistent = total = 0
    for child in hierarchy.root.children:
        parent_locations = set(child.top_entities("location", 4))
        for grand in child.children:
            for name in grand.top_entities("location", 3):
                total += 1
                if name in parent_locations:
                    consistent += 1
    if total:
        assert consistent / total > 0.5
