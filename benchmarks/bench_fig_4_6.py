"""Figure 4.6 — decomposition of ToPMine's runtime.

Paper result: the phrase-mining stage is negligible next to the
(phrase-constrained) topic-modeling stage — roughly 40x smaller at 2000
Gibbs iterations — and both scale linearly in the number of documents.

Expected reproduction: mining time a small fraction of modeling time at
every corpus size, and near-linear growth of both stages.
"""

import time

from repro.baselines import LDAGibbs
from repro.datasets import DBLPConfig, generate_dblp
from repro.phrases import ToPMine, ToPMineConfig

from conftest import fmt_row, report

SIZES = (40, 80, 160)
GIBBS_ITERATIONS = 25


def _decompose(corpus):
    topmine = ToPMine(ToPMineConfig(num_topics=5,
                                    lda_iterations=GIBBS_ITERATIONS),
                      seed=0)
    start = time.perf_counter()
    counts, partitions = topmine.mine(corpus)
    mining = time.perf_counter() - start

    start = time.perf_counter()
    LDAGibbs(num_topics=5, iterations=GIBBS_ITERATIONS, seed=0).fit(
        [d.tokens for d in corpus], len(corpus.vocabulary),
        partitions=partitions)
    modeling = time.perf_counter() - start
    return mining, modeling


def test_fig_4_6_runtime_decomposition(benchmark):
    corpora = [generate_dblp(DBLPConfig(max_authors=size), seed=3).corpus
               for size in SIZES]

    def run():
        return [(len(corpus),) + _decompose(corpus) for corpus in corpora]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("documents", ["mining (s)", "modeling (s)",
                                   "ratio"])]
    for num_docs, mining, modeling in rows:
        lines.append(fmt_row(str(num_docs),
                             [mining, modeling, modeling / max(mining,
                                                               1e-9)]))
    lines.append("paper: modeling ~40x mining at 2000 iterations; "
                 "both linear in documents")
    report("fig_4_6_runtime_decomposition", lines)

    for _, mining, modeling in rows:
        assert mining < modeling
    # Near-linear scaling: 4x documents should not cost more than ~10x.
    first, last = rows[0], rows[-1]
    doc_ratio = last[0] / first[0]
    assert last[1] / max(first[1], 1e-9) < doc_ratio * 3
    assert last[2] / max(first[2], 1e-9) < doc_ratio * 3
