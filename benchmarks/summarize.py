"""Build ``benchmarks/results/summary.json`` from the persisted benches.

Combines the human-readable tables under ``benchmarks/results/*.txt``
with the per-bench wall-times collected by ``conftest.py`` into one
machine-readable document (schema ``repro.obs/bench-summary/v1``) — the
same style as the :mod:`repro.obs.report` run reports, so perf
trajectories (``BENCH_*.json``) can be seeded from measured numbers.

Each entry carries:

* ``name`` — the result table's base name (e.g. ``table_4_5_runtimes``);
* ``source`` — the bench module inferred from the timings, when any
  module's ``bench_``-stripped stem prefixes the result name;
* ``wall_time_s`` — summed wall-time of that module's benches (None when
  no timing was collected, e.g. the table predates the timing hook);
* ``key_metric`` — the first data line of the table, a human-oriented
  anchor for eyeballing regressions.

Usage: ``python benchmarks/summarize.py`` (run by collect_results.sh).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
SUMMARY_SCHEMA = "repro.obs/bench-summary/v1"


def _load_module_times(results_dir: str) -> Dict[str, float]:
    """Summed bench wall-time per module stem (without ``bench_`` prefix)."""
    path = os.path.join(results_dir, "timings.json")
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as handle:
            timings = json.load(handle).get("timings", {})
    except (OSError, ValueError):
        return {}
    totals: Dict[str, float] = {}
    for nodeid, seconds in timings.items():
        module = os.path.basename(nodeid.split("::", 1)[0])
        stem = module[:-3] if module.endswith(".py") else module
        if stem.startswith("bench_"):
            stem = stem[len("bench_"):]
        totals[stem] = totals.get(stem, 0.0) + float(seconds)
    return totals


def _key_metric(path: str) -> Optional[str]:
    """First data line of a result table (skips the ===/name header)."""
    try:
        with open(path) as handle:
            lines = [line.rstrip() for line in handle]
    except OSError:
        return None
    for line in lines[3:]:
        stripped = line.strip()
        if stripped and not set(stripped) <= {"=", "-"}:
            return stripped
    return None


def _match_module(name: str,
                  module_times: Dict[str, float],
                  ) -> Tuple[Optional[str], Optional[float]]:
    """The timed module whose stem is the longest prefix of ``name``."""
    best: Optional[str] = None
    for stem in module_times:
        if name.startswith(stem) and (best is None or len(stem) > len(best)):
            best = stem
    if best is None:
        return None, None
    return "bench_" + best + ".py", module_times[best]


def build_summary(results_dir: str = RESULTS_DIR) -> dict:
    """Assemble the summary document from ``results_dir``."""
    module_times = _load_module_times(results_dir)
    benchmarks: List[dict] = []
    if os.path.isdir(results_dir):
        for filename in sorted(os.listdir(results_dir)):
            if not filename.endswith(".txt"):
                continue
            name = filename[:-4]
            source, wall_time = _match_module(name, module_times)
            benchmarks.append({
                "name": name,
                "source": source,
                "wall_time_s": wall_time,
                "key_metric": _key_metric(
                    os.path.join(results_dir, filename)),
            })
    return {
        "schema": SUMMARY_SCHEMA,
        "generated_unix": time.time(),
        "num_benchmarks": len(benchmarks),
        "benchmarks": benchmarks,
    }


def main() -> int:
    summary = build_summary()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "summary.json")
    with open(path, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    print(f"wrote {summary['num_benchmarks']} benchmark summaries -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
