"""Chapter 5 — entity topical role analysis (Tables 5.1-5.4, Figs 5.1-5.4).

Paper results reproduced here:

* Table 5.1: the combined entity-specific + quality phrase ranking
  produces better role descriptions than either ranking alone (quality-
  only ignores the entity; entity-only surfaces junk like 'fast large').
* Figs 5.2/5.3: a prolific author's frequency distribution over subtopics
  concentrates where they actually publish.
* Table 5.3: ERankPop+Pur removes the cross-topic overlap that coverage-
  only ranking exhibits (prolific generalists top every topic's
  coverage-only list).
* Table 5.2 / Fig 5.4: a venue's role differs per topic; venues rank
  highest in their home area.
"""

from typing import Dict

from repro.core import LatentEntityMiner, MinerConfig
from repro.eval import SimulatedPhraseJudge

from conftest import fmt_row, report


def _mine(dataset):
    miner = LatentEntityMiner(
        MinerConfig(num_children=[6, 3], max_depth=2), seed=0)
    return miner.fit(dataset.corpus)


def test_table_5_1_entity_specific_ranking(benchmark, dblp):
    result = benchmark.pedantic(_mine, args=(dblp,), rounds=1,
                                iterations=1)
    roles = result.roles
    topic = result.hierarchy.root.children[0]
    author = topic.entity_ranks["author"][0][0]
    judge = SimulatedPhraseJudge(dblp.ground_truth, noise=0.0, seed=0)

    variants = {
        "quality only (alpha=0)": roles.entity_phrases(
            topic.notation, "author", [author], alpha=0.0, top_k=8),
        "entity only (alpha=1)": roles.entity_phrases(
            topic.notation, "author", [author], alpha=1.0, top_k=8),
        "combined (alpha=0.5)": roles.entity_phrases(
            topic.notation, "author", [author], alpha=0.5, top_k=8),
    }
    lines = [f"author {author} in topic {topic.notation}"]
    mean_quality: Dict[str, float] = {}
    for name, ranked in variants.items():
        phrases = [p for p, _ in ranked]
        mean_quality[name] = sum(judge.base_score(p)
                                 for p in phrases) / max(len(phrases), 1)
        lines.append(f"{name:<24}: " + " / ".join(phrases[:6]))
    lines.append("")
    lines.append(fmt_row("variant", ["mean judge score"]))
    for name, score in mean_quality.items():
        lines.append(fmt_row(name, [score]))
    lines.append("paper: combined ranking yields the best role phrases")
    report("table_5_1_entity_phrases", lines)

    assert mean_quality["combined (alpha=0.5)"] >= \
        mean_quality["entity only (alpha=1)"] - 0.3


def test_fig_5_2_author_distribution(benchmark, dblp):
    result = _mine(dblp)
    truth = dblp.ground_truth
    counts: Dict[str, int] = {}
    for doc in dblp.corpus:
        for author in doc.entity_list("author"):
            counts[author] = counts.get(author, 0) + 1
    prolific = sorted(counts, key=counts.get, reverse=True)[:5]

    def run():
        return {author: result.roles.entity_distribution("author", author)
                for author in prolific}

    distributions = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    concentrated = 0
    for author, dist in distributions.items():
        top = sorted(dist.items(), key=lambda kv: -kv[1])[:3]
        lines.append(f"{author} ({counts[author]} papers, true leaf "
                     f"{truth.topic_of_entity('author', author)}): "
                     + ", ".join(f"{n}={v:.2f}" for n, v in top))
        if top and top[0][1] > 0.4:
            concentrated += 1
    lines.append("paper: each author's mass concentrates in their "
                 "working areas (Figs. 5.2/5.3)")
    report("fig_5_2_author_distributions", lines)
    assert concentrated >= 3


def test_table_5_3_erank_overlap(benchmark, dblp):
    result = _mine(dblp)
    children = result.hierarchy.root.children

    def overlap(purity: bool) -> int:
        top_sets = [set(n for n, _ in result.roles.rank_entities(
            c.notation, "author", top_k=5, purity=purity))
            for c in children]
        return sum(len(a & b) for i, a in enumerate(top_sets)
                   for b in top_sets[i + 1:])

    def run():
        return overlap(False), overlap(True)

    coverage_overlap, purity_overlap = benchmark.pedantic(run, rounds=1,
                                                          iterations=1)
    lines = [fmt_row("ranking", ["cross-topic overlap (top-5)"]),
             fmt_row("coverage only", [coverage_overlap]),
             fmt_row("ERankPop+Pur", [purity_overlap]),
             "paper: purity removes the overlap entirely (Table 5.3)"]
    report("table_5_3_erank_overlap", lines)
    assert purity_overlap <= coverage_overlap


def test_fig_5_4_venue_roles(benchmark, dblp):
    result = _mine(dblp)
    truth = dblp.ground_truth

    def run():
        correct = total = 0
        lines = []
        for child in result.hierarchy.root.children:
            venues = [n for n, _ in result.roles.rank_entities(
                child.notation, "venue", top_k=3)]
            # The topic's own dominant area, via its top terms' truth.
            top_venue_areas = [truth.topic_of_entity("venue", v)
                               for v in venues]
            lines.append(f"{child.notation}: venues "
                         f"{', '.join(venues)}")
            areas = [a for a in top_venue_areas if a is not None]
            if areas:
                total += 1
                if len(set(areas)) == 1:
                    correct += 1
        return lines, correct, total

    lines, correct, total = benchmark.pedantic(run, rounds=1, iterations=1)
    lines.append(f"pure-venue topics: {correct}/{total}")
    lines.append("paper: a venue's role concentrates in its home area "
                 "(Table 5.2 / Fig 5.4)")
    report("fig_5_4_venue_roles", lines)
    assert correct >= max(total - 2, 1)
