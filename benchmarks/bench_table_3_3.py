"""Table 3.3 — HPMI on NEWS (16 topics + 4-topic subset).

Paper result (overall HPMI):

    NEWS (4 topics):  TopK 0.13 < NetClus 0.36 < CATHYHIN(equal) 0.76
                      < CATHYHIN(norm) 0.80 < CATHYHIN(learn) 0.84
    NEWS (16 topics): TopK -0.88 < NetClus -0.03 < CATHYHIN(equal) 0.87
                      < CATHYHIN(norm) 0.93 ~ CATHYHIN(learn) 0.95

Expected reproduction: same winner family (CATHYHIN), TopK and NetClus
clearly below every CATHYHIN variant.
"""

from repro.eval import CooccurrenceStatistics, hpmi_table

from _methods import cathyhin_topics, netclus_topics, topk_topics
from conftest import fmt_row, report

LINK_TYPES = [("term", "term"), ("person", "term"), ("person", "person"),
              ("location", "term"), ("location", "person"),
              ("location", "location")]
ENTITY_TYPES = ["person", "location"]

PAPER_OVERALL_16 = {
    "TopK": -0.8783, "NetClus": -0.0274, "CATHYHIN (equal)": 0.8749,
    "CATHYHIN (norm)": 0.9284, "CATHYHIN (learn)": 0.9500,
}
PAPER_OVERALL_4 = {
    "TopK": 0.1317, "NetClus": 0.3575, "CATHYHIN (equal)": 0.7610,
    "CATHYHIN (norm)": 0.8023, "CATHYHIN (learn)": 0.8434,
}


def _run_dataset(dataset, num_topics):
    stats = CooccurrenceStatistics(dataset.corpus)
    methods = {
        "TopK": topk_topics(dataset, num_topics, ENTITY_TYPES),
        "NetClus": netclus_topics(dataset, num_topics, ENTITY_TYPES,
                                  smoothing=0.5),
        "CATHYHIN (equal)": cathyhin_topics(dataset, num_topics, "equal",
                                            ENTITY_TYPES),
        "CATHYHIN (norm)": cathyhin_topics(dataset, num_topics, "norm",
                                           ENTITY_TYPES),
        "CATHYHIN (learn)": cathyhin_topics(dataset, num_topics, "learn",
                                            ENTITY_TYPES),
    }
    # Stories carry only 3 persons / 4 locations each, so the entity
    # lists are capped the way the paper capped venues at K=3.
    overrides = {"person": 3, "location": 4}
    return {name: hpmi_table(stats, topics, LINK_TYPES, top_k=20,
                             top_k_overrides=overrides)
            for name, topics in methods.items()}


def _emit(name, rows, paper_overall):
    lines = [fmt_row("method", ["-".join(lt) for lt in LINK_TYPES]
                     + ["overall", "paper"])]
    for method, table in rows.items():
        values = [table["-".join(lt)] for lt in LINK_TYPES]
        values.append(table["overall"])
        values.append(paper_overall[method])
        lines.append(fmt_row(method, values))
    report(name, lines)


def test_table_3_3_news_16topics(benchmark, news16):
    rows = benchmark.pedantic(_run_dataset, args=(news16, 16),
                              rounds=1, iterations=1)
    _emit("table_3_3_news_16topics", rows, PAPER_OVERALL_16)
    overall = {m: t["overall"] for m, t in rows.items()}
    assert overall["CATHYHIN (learn)"] > overall["NetClus"]
    assert overall["CATHYHIN (equal)"] > overall["TopK"]


def test_table_3_3_news_4subset(benchmark, news4):
    rows = benchmark.pedantic(_run_dataset, args=(news4, 4),
                              rounds=1, iterations=1)
    _emit("table_3_3_news_4subset", rows, PAPER_OVERALL_4)
    overall = {m: t["overall"] for m, t in rows.items()}
    assert overall["CATHYHIN (learn)"] > overall["TopK"]
