"""Table 4.5 — runtime of the phrase+topic methods across corpus sizes.

Paper result (sampled DBLP titles -> full DBLP abstracts):

    PD-LDA and Turbo Topics are orders of magnitude slower than LDA and
    become intractable beyond small samples; TNG sits between; KERT adds
    little over LDA on short text; ToPMine runs in the same order as LDA
    (often faster, since PhraseLDA samples one topic per phrase).

Expected reproduction: the same runtime ordering
    ToPMine ~ LDA < KERT < TNG < Turbo ~ PD-LDA
and superlinear cost gaps for the permutation-test / re-segmentation
methods as the corpus grows.
"""

import time
from typing import Dict

from repro.baselines import LDAGibbs, PDLDA, TNG, TurboTopics
from repro.datasets import DBLPConfig, generate_dblp
from repro.phrases import (KERT, KERTConfig, ToPMine, ToPMineConfig,
                           mine_frequent_phrases)

from conftest import fmt_row, report

ITERATIONS = 15
SIZES = {"small": 60, "medium": 120}


def _time_methods(corpus) -> Dict[str, float]:
    timings: Dict[str, float] = {}
    docs = [d.tokens for d in corpus]

    start = time.perf_counter()
    LDAGibbs(num_topics=5, iterations=ITERATIONS, seed=0).fit(
        docs, len(corpus.vocabulary))
    timings["LDA"] = time.perf_counter() - start

    start = time.perf_counter()
    ToPMine(ToPMineConfig(num_topics=5, lda_iterations=ITERATIONS),
            seed=0).fit(corpus)
    timings["ToPMine"] = time.perf_counter() - start

    start = time.perf_counter()
    lda = LDAGibbs(num_topics=5, iterations=ITERATIONS, seed=0).fit(
        docs, len(corpus.vocabulary))
    counts = mine_frequent_phrases(corpus, min_support=5)
    KERT(KERTConfig(min_support=5)).rank(corpus, lda.to_flat(),
                                         counts=counts)
    timings["KERT"] = time.perf_counter() - start

    start = time.perf_counter()
    TNG(num_topics=5, iterations=ITERATIONS, seed=0).fit(corpus)
    timings["TNG"] = time.perf_counter() - start

    start = time.perf_counter()
    TurboTopics(num_topics=5, iterations=ITERATIONS, permutations=20,
                seed=0).fit(corpus)
    timings["Turbo"] = time.perf_counter() - start

    start = time.perf_counter()
    PDLDA(num_topics=5, iterations=ITERATIONS * 3, seed=0).fit(corpus)
    timings["PDLDA"] = time.perf_counter() - start
    return timings


def test_table_4_5_runtimes(benchmark):
    corpora = {name: generate_dblp(DBLPConfig(max_authors=size),
                                   seed=3).corpus
               for name, size in SIZES.items()}

    def run():
        return {name: _time_methods(corpus)
                for name, corpus in corpora.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = ["LDA", "ToPMine", "KERT", "TNG", "Turbo", "PDLDA"]
    lines = [fmt_row("corpus (docs)", methods)]
    for name, corpus in corpora.items():
        timings = results[name]
        lines.append(fmt_row(f"{name} ({len(corpus)})",
                             [timings[m] for m in methods]))
    lines.append("paper: ToPMine ~ LDA; TNG slower; Turbo/PD-LDA "
                 "orders slower and intractable at scale")
    report("table_4_5_runtimes", lines)

    large = results["medium"]
    assert large["ToPMine"] < large["TNG"]
    assert large["ToPMine"] < large["Turbo"]
    assert large["ToPMine"] < large["PDLDA"]
    # Our token-level TNG and LDA are the same sampler family, so their
    # runtimes are within noise of each other (the paper's MALLET TNG is
    # meaningfully slower); assert parity with tolerance rather than a
    # strict order.
    assert large["LDA"] < 1.4 * large["TNG"]
    assert large["PDLDA"] > large["LDA"]
