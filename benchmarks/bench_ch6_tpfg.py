"""Section 6.1.6 — advisor–advisee mining accuracy (unsupervised).

Paper result (DBLP, manually labeled test sets): TPFG reaches the best
known accuracy (~78-84% depending on test set), ahead of the independent
local optimum (IndMAX-style heuristics, ~70-77%) and simple rules /
supervised SVM trained on pair features.  P@(k, theta) rises with k.

Expected reproduction: TPFG >= IndMAX on every seed (constraint
propagation never hurts, sometimes fixes time-conflicted choices);
both in the 65-85% band; P@2 > P@1; root (no-advisor) authors mostly
recognized.
"""

from repro.relations import (CollaborationNetwork, IndMaxBaseline,
                             RuleBaseline, TPFG, build_candidate_graph,
                             evaluate_predictions, precision_at)

from conftest import fmt_row, report


def _truth_for(dataset, network):
    truth = {r.advisee: r.advisor for r in dataset.ground_truth.advising}
    for author in network.authors:
        truth.setdefault(author, None)
    return truth


def test_ch6_tpfg_accuracy(benchmark, dblp_relations):
    dataset = dblp_relations
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    graph = build_candidate_graph(network)
    truth = _truth_for(dataset, network)

    def run():
        tpfg = TPFG(max_iter=20).fit(graph)
        indmax = IndMaxBaseline().predict(graph)
        rule = RuleBaseline().predict(network)
        return tpfg, indmax, rule

    tpfg, indmax, rule = benchmark.pedantic(run, rounds=1, iterations=1)
    scores = {
        "RULE": evaluate_predictions(rule, truth),
        "IndMAX": evaluate_predictions(indmax.predictions(), truth),
        "TPFG": evaluate_predictions(tpfg.predictions(), truth),
    }
    lines = [fmt_row("method", ["advisee acc", "root acc", "overall"])]
    for name, acc in scores.items():
        lines.append(fmt_row(name, [acc.advisee_accuracy,
                                    acc.root_accuracy, acc.accuracy]))
    lines.append("")
    lines.append(fmt_row("P@(k,0.5) for TPFG", ["k=1", "k=2", "k=3"]))
    pk = [precision_at(tpfg, truth, top_k=k).advisee_accuracy
          for k in (1, 2, 3)]
    lines.append(fmt_row("", pk))
    lines.append("paper: TPFG ~80% best; IndMAX below; P@k rises with k")
    report("ch6_tpfg_accuracy", lines)

    assert scores["TPFG"].advisee_accuracy >= \
        scores["IndMAX"].advisee_accuracy - 1e-9
    assert scores["TPFG"].advisee_accuracy > 0.6
    assert scores["TPFG"].root_accuracy > 0.8
    assert pk[0] <= pk[1] <= pk[2]


def test_ch6_rule_ablation(benchmark, dblp_relations):
    """Ablation: preprocessing rules R1-R4 on/off (Section 6.1.3)."""
    from repro.relations import PreprocessConfig

    dataset = dblp_relations
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    truth = _truth_for(dataset, network)
    rule_sets = {
        "all rules": frozenset({"R1", "R2", "R3", "R4"}),
        "no rules": frozenset(),
        "R1 only": frozenset({"R1"}),
        "R3+R4": frozenset({"R3", "R4"}),
    }

    def run():
        results = {}
        for name, rules in rule_sets.items():
            graph = build_candidate_graph(
                network, PreprocessConfig(rules=rules))
            tpfg = TPFG(max_iter=15).fit(graph)
            acc = evaluate_predictions(tpfg.predictions(), truth)
            results[name] = (graph.num_edges(), acc.advisee_accuracy)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row("rule set", ["candidate edges", "advisee acc"])]
    for name, (edges, acc) in results.items():
        lines.append(fmt_row(name, [edges, acc]))
    lines.append("paper: rules shrink the candidate set substantially "
                 "while keeping accuracy competitive")
    report("ch6_rule_ablation", lines)

    assert results["all rules"][0] < results["no rules"][0]
